/// ScenarioCatalog preset invariants: the Table II densities plus the
/// non-paper regimes, the dynamic d<N> keys, and the derived simulator /
/// tuning-problem configurations.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "aedb/tuning_problem.hpp"
#include "expt/scale.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {
namespace {

TEST(ScenarioCatalog, TableTwoPresetsMatchThePaper) {
  const auto& catalog = ScenarioCatalog::instance();
  const struct {
    const char* key;
    int density;
    std::size_t nodes;
  } expected[] = {{"d100", 100, 25}, {"d200", 200, 50}, {"d300", 300, 75}};
  for (const auto& row : expected) {
    const ScenarioSpec spec = catalog.resolve(row.key);
    EXPECT_EQ(spec.devices_per_km2, row.density);
    EXPECT_EQ(spec.area_width_m, 500.0);
    EXPECT_EQ(spec.area_height_m, 500.0);
    EXPECT_EQ(spec.mobility, sim::MobilityKind::kRandomWalk);
    EXPECT_EQ(spec.max_speed_mps, 2.0);
    EXPECT_EQ(spec.node_count(), row.nodes);  // 25/50/75 <=> 100/200/300
    EXPECT_EQ(spec.shadowing_sigma_db, 0.0);
  }
  EXPECT_EQ(paper_scenarios(),
            (std::vector<std::string>{"d100", "d200", "d300"}));
}

TEST(ScenarioCatalog, NonPaperRegimesExistWithTheRightPhysics) {
  const auto& catalog = ScenarioCatalog::instance();

  const ScenarioSpec frozen = catalog.resolve("static-grid");
  EXPECT_EQ(frozen.mobility, sim::MobilityKind::kStatic);
  EXPECT_EQ(frozen.max_speed_mps, 0.0);

  const ScenarioSpec vehicular = catalog.resolve("highspeed");
  EXPECT_EQ(vehicular.mobility, sim::MobilityKind::kRandomWaypoint);
  EXPECT_GE(vehicular.min_speed_mps, 10.0);
  EXPECT_GT(vehicular.max_speed_mps, vehicular.min_speed_mps);

  const ScenarioSpec sparse = catalog.resolve("sparse-wide");
  EXPECT_EQ(sparse.area_width_m, 1000.0);
  EXPECT_EQ(sparse.area_height_m, 1000.0);
  EXPECT_LT(sparse.devices_per_km2, 100);
  EXPECT_EQ(sparse.node_count(), 50u);  // 50 dev/km^2 on 1 km^2

  const ScenarioSpec canyon = catalog.resolve("urban-canyon");
  EXPECT_GT(canyon.propagation.exponent, 3.0);  // steeper than free Table II
  EXPECT_GT(canyon.shadowing_sigma_db, 0.0);
  EXPECT_GT(canyon.shadowing_correlation_m, 25.0);  // building-scale fades
  EXPECT_LE(canyon.max_speed_mps, 2.0);             // pedestrian
  EXPECT_EQ(canyon.mobility, sim::MobilityKind::kRandomWalk);

  const ScenarioSpec mixed = catalog.resolve("mixed-speed");
  EXPECT_EQ(mixed.mobility, sim::MobilityKind::kRandomWaypoint);
  EXPECT_LE(mixed.min_speed_mps, 1.0);   // pedestrians...
  EXPECT_GE(mixed.max_speed_mps, 15.0);  // ...and vehicles in one crowd

  const ScenarioSpec small = catalog.resolve("payload-small");
  const ScenarioSpec large = catalog.resolve("payload-large");
  EXPECT_LT(small.data_bytes, 256u);
  EXPECT_GT(large.data_bytes, 256u);
  EXPECT_LT(small.beacon_bytes, large.beacon_bytes);
  // Sweep points differ only in payload sizing, so indicator deltas are
  // attributable to the payload alone.
  EXPECT_EQ(small.devices_per_km2, large.devices_per_km2);
  EXPECT_EQ(small.mobility, large.mobility);
  EXPECT_EQ(small.shadowing_sigma_db, large.shadowing_sigma_db);

  const ScenarioSpec deadline = catalog.resolve("deadline-tight");
  EXPECT_EQ(deadline.devices_per_km2, 200);
  EXPECT_LT(deadline.bt_limit_s, 2.0);
  // The deadline must reach the tuning problem, and the default screen
  // window must span the whole ensemble rejection budget
  // (bt_limit x networks) so a single truncated network can prove
  // infeasibility on its own — the regime the racing bench leans on.
  Scale scale;
  scale.networks = 3;
  EXPECT_EQ(deadline.problem_config(scale).bt_limit_s, deadline.bt_limit_s);
  EXPECT_GT(deadline.fidelity_tiers.at(0).window_s,
            deadline.bt_limit_s * static_cast<double>(scale.networks));
}

TEST(ScenarioCatalog, SpecCoversTheFullSimulatorSurface) {
  // Every radio/traffic knob a spec declares must land in the derived
  // configuration — nothing may silently stay at a simulator default
  // (the shadowing_correlation_m regression: shadowed specs used to
  // inherit NetworkConfig's 25 m).
  ScenarioSpec spec = ScenarioCatalog::instance().resolve("d100");
  spec.propagation.exponent = 2.7;
  spec.propagation.reference_distance = 2.0;
  spec.propagation.reference_loss_db = 40.0;
  spec.shadowing_sigma_db = 5.0;
  spec.shadowing_correlation_m = 80.0;
  spec.model_propagation_delay = false;
  spec.phy.rx_sensitivity_dbm = -90.0;
  spec.phy.bitrate_bps = 2e6;
  spec.mac.cw = 16;
  spec.mac.max_retries = 7;
  spec.data_bytes = 512;
  spec.beacon_bytes = 75;
  spec.beacon_period_s = 0.5;
  spec.beacon_jitter_s = 0.025;

  const aedb::ScenarioConfig config = spec.scenario_config(3, 1);
  EXPECT_EQ(config.network.propagation.exponent, 2.7);
  EXPECT_EQ(config.network.propagation.reference_distance, 2.0);
  EXPECT_EQ(config.network.propagation.reference_loss_db, 40.0);
  EXPECT_EQ(config.network.shadowing_sigma_db, 5.0);
  EXPECT_EQ(config.network.shadowing_correlation_m, 80.0);
  EXPECT_FALSE(config.network.model_propagation_delay);
  EXPECT_EQ(config.network.phy.rx_sensitivity_dbm, -90.0);
  EXPECT_EQ(config.network.phy.bitrate_bps, 2e6);
  EXPECT_EQ(config.network.mac.cw, 16u);
  EXPECT_EQ(config.network.mac.max_retries, 7u);
  EXPECT_EQ(config.data_bytes, 512u);
  EXPECT_EQ(config.beacon_bytes, 75u);
  EXPECT_EQ(config.beacon_period.ns(), sim::seconds_d(0.5).ns());
  EXPECT_EQ(config.beacon_jitter.ns(), sim::seconds_d(0.025).ns());
}

TEST(ScenarioCatalog, BeaconCadenceDefaultsReproduceTableTwo) {
  // The beaconing knobs default to the hard-wired values every pre-knob
  // run used (1 s period, 10 ms jitter): the catalog presets — and hence
  // the pinned golden indicator CSVs — must be bit-for-bit unaffected by
  // the knobs' existence.
  const ScenarioSpec spec = ScenarioCatalog::instance().resolve("d200");
  EXPECT_EQ(spec.beacon_period_s, 1.0);
  EXPECT_EQ(spec.beacon_jitter_s, 0.010);
  const aedb::ScenarioConfig config = spec.scenario_config(1, 0);
  const aedb::ScenarioConfig defaults;
  EXPECT_EQ(config.beacon_period.ns(), defaults.beacon_period.ns());
  EXPECT_EQ(config.beacon_jitter.ns(), defaults.beacon_jitter.ns());
}

TEST(ScenarioCatalog, NewSpecFieldsMustBeTriagedHere) {
  // Fires when a field is added to (or resized in) ScenarioSpec.  When it
  // does: wire the new knob through scenario_config(), hash it into
  // ExperimentPlan::fingerprint() (a knob outside the fingerprint serves
  // stale cached indicators after a preset edit), then update this
  // expected size.  Gated to the CI platform so exotic ABIs don't trip
  // over padding differences.
#if defined(__x86_64__) && defined(__linux__)
  EXPECT_EQ(sizeof(ScenarioSpec), 320u)  // + fidelity ladder + bt_limit_s
      << "ScenarioSpec changed shape: triage the new/resized field for "
         "scenario_config() and ExperimentPlan::fingerprint()";
#else
  GTEST_SKIP() << "size guard only runs on the x86-64 Linux CI platform";
#endif
}

TEST(ScenarioCatalog, UrbanCanyonCorrelationReachesTheNetwork) {
  // The urban-canyon preset is the catalog's proof that the correlation
  // knob works end to end: its 50 m must survive into NetworkConfig, not
  // be replaced by the 25 m default.
  const ScenarioSpec canyon =
      ScenarioCatalog::instance().resolve("urban-canyon");
  const aedb::ScenarioConfig config = canyon.scenario_config(1, 0);
  EXPECT_EQ(config.network.shadowing_correlation_m,
            canyon.shadowing_correlation_m);
  EXPECT_NE(config.network.shadowing_correlation_m,
            sim::NetworkConfig{}.shadowing_correlation_m);
}

TEST(ScenarioCatalog, EveryPresetHasAKeyAndDescription) {
  for (const ScenarioSpec& spec : ScenarioCatalog::instance().specs()) {
    EXPECT_FALSE(spec.key.empty());
    EXPECT_FALSE(spec.description.empty());
    EXPECT_GT(spec.devices_per_km2, 0);
    EXPECT_GT(spec.node_count(), 0u);
  }
}

TEST(ScenarioCatalog, DynamicDensityKeysResolve) {
  const auto& catalog = ScenarioCatalog::instance();
  const ScenarioSpec spec = catalog.resolve("d150");
  EXPECT_EQ(spec.devices_per_km2, 150);
  EXPECT_EQ(spec.node_count(), 38u);  // round(150 * 0.25 km^2)
  EXPECT_EQ(density_key(150), "d150");

  EXPECT_FALSE(catalog.contains("d0"));
  EXPECT_FALSE(catalog.contains("d-5"));
  EXPECT_FALSE(catalog.contains("dxyz"));
  EXPECT_FALSE(catalog.contains("d15x"));
  EXPECT_FALSE(catalog.contains("d+300"));       // no sign
  EXPECT_FALSE(catalog.contains("d0100"));       // no leading zero
  EXPECT_FALSE(catalog.contains("d4294967397"));  // would wrap an int
}

TEST(ScenarioCatalog, UnknownKeyThrowsWithTheRegisteredList) {
  try {
    (void)ScenarioCatalog::instance().resolve("underwater");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("underwater"), std::string::npos);
    EXPECT_NE(message.find("d100"), std::string::npos);
    EXPECT_NE(message.find("static-grid"), std::string::npos);
  }
}

TEST(ScenarioCatalog, ProblemConfigWiresScaleAndScenarioThrough) {
  Scale scale;
  scale.networks = 4;
  scale.seed = 99;
  const ScenarioSpec spec = ScenarioCatalog::instance().resolve("sparse-wide");
  const aedb::AedbTuningProblem::Config config = spec.problem_config(scale);
  EXPECT_EQ(config.network_count, 4u);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.devices_per_km2, 50);
  EXPECT_EQ(config.scenario.network.area_width, 1000.0);

  // The tuning problem derives its node count from density x arena.
  const aedb::AedbTuningProblem problem(config);
  EXPECT_EQ(problem.config().scenario.network.node_count, 50u);
  EXPECT_EQ(problem.config().scenario.network.seed, 99u);
}

ScenarioSpec cli_spec(const std::vector<const char*>& argv) {
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  return scenario_from_cli_or_exit(args);
}

TEST(ScenarioCatalog, CliResolvesScenarioOrDensity) {
  EXPECT_EQ(cli_spec({"bench"}).key, "d100");  // fallback
  EXPECT_EQ(cli_spec({"bench", "--scenario=urban-canyon"}).key,
            "urban-canyon");
  EXPECT_EQ(cli_spec({"bench", "--density=150"}).key, "d150");
}

TEST(ScenarioCatalogDeathTest, CliRejectsConflictingWorkloadFlags) {
  // --density silently overriding an explicit --scenario ran a different
  // workload than asked for; both flags together must exit 2 naming them.
  EXPECT_EXIT(
      (void)cli_spec({"bench", "--scenario=urban-canyon", "--density=200"}),
      ::testing::ExitedWithCode(2), "--scenario and --density");
}

TEST(ScenarioCatalogDeathTest, CliRejectsNonPositiveAndMalformedDensities) {
  // These used to fall through to a baffling "unknown scenario 'd0'" /
  // "'d-5'" catalog error; the boundary must say what is actually wrong.
  for (const char* flag : {"--density=0", "--density=-5", "--density=abc",
                           "--density=12x", "--density=", "--density",
                           "--density=99999999999999999999"}) {
    EXPECT_EXIT((void)cli_spec({"bench", flag}),
                ::testing::ExitedWithCode(2),
                "--density must be a positive integer")
        << flag;
  }
}

TEST(ScenarioCatalogDeathTest, CliRejectsCampaignSweepSpellings) {
  // --scenarios/--densities (the campaign benches' sweeps) used to be
  // silently ignored here, running the fallback workload instead.
  EXPECT_EXIT((void)cli_spec({"bench", "--scenarios=urban-canyon"}),
              ::testing::ExitedWithCode(2), "single workload");
  EXPECT_EXIT((void)cli_spec({"bench", "--densities=100,200"}),
              ::testing::ExitedWithCode(2), "single workload");
}

TEST(ScenarioCatalogDeathTest, CliRejectsUnknownScenarioWithTheCatalog) {
  EXPECT_EXIT((void)cli_spec({"bench", "--scenario=underwater"}),
              ::testing::ExitedWithCode(2), "unknown scenario 'underwater'");
}

TEST(ScenarioCatalog, ScenarioConfigIsDeterministic) {
  const ScenarioSpec spec = ScenarioCatalog::instance().resolve("highspeed");
  const aedb::ScenarioConfig a = spec.scenario_config(7, 2);
  const aedb::ScenarioConfig b = spec.scenario_config(7, 2);
  EXPECT_EQ(a.network.node_count, b.network.node_count);
  EXPECT_EQ(a.network.seed, b.network.seed);
  EXPECT_EQ(a.network.network_index, 2u);
  EXPECT_EQ(a.network.max_speed, 30.0);
}

}  // namespace
}  // namespace aedbmls::expt
