/// ScenarioCatalog preset invariants: the Table II densities plus the
/// non-paper regimes, the dynamic d<N> keys, and the derived simulator /
/// tuning-problem configurations.

#include <gtest/gtest.h>

#include <stdexcept>

#include "aedb/tuning_problem.hpp"
#include "expt/scale.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {
namespace {

TEST(ScenarioCatalog, TableTwoPresetsMatchThePaper) {
  const auto& catalog = ScenarioCatalog::instance();
  const struct {
    const char* key;
    int density;
    std::size_t nodes;
  } expected[] = {{"d100", 100, 25}, {"d200", 200, 50}, {"d300", 300, 75}};
  for (const auto& row : expected) {
    const ScenarioSpec spec = catalog.resolve(row.key);
    EXPECT_EQ(spec.devices_per_km2, row.density);
    EXPECT_EQ(spec.area_width_m, 500.0);
    EXPECT_EQ(spec.area_height_m, 500.0);
    EXPECT_EQ(spec.mobility, sim::MobilityKind::kRandomWalk);
    EXPECT_EQ(spec.max_speed_mps, 2.0);
    EXPECT_EQ(spec.node_count(), row.nodes);  // 25/50/75 <=> 100/200/300
    EXPECT_EQ(spec.shadowing_sigma_db, 0.0);
  }
  EXPECT_EQ(paper_scenarios(),
            (std::vector<std::string>{"d100", "d200", "d300"}));
}

TEST(ScenarioCatalog, NonPaperRegimesExistWithTheRightPhysics) {
  const auto& catalog = ScenarioCatalog::instance();

  const ScenarioSpec frozen = catalog.resolve("static-grid");
  EXPECT_EQ(frozen.mobility, sim::MobilityKind::kStatic);
  EXPECT_EQ(frozen.max_speed_mps, 0.0);

  const ScenarioSpec vehicular = catalog.resolve("highspeed");
  EXPECT_EQ(vehicular.mobility, sim::MobilityKind::kRandomWaypoint);
  EXPECT_GE(vehicular.min_speed_mps, 10.0);
  EXPECT_GT(vehicular.max_speed_mps, vehicular.min_speed_mps);

  const ScenarioSpec sparse = catalog.resolve("sparse-wide");
  EXPECT_EQ(sparse.area_width_m, 1000.0);
  EXPECT_EQ(sparse.area_height_m, 1000.0);
  EXPECT_LT(sparse.devices_per_km2, 100);
  EXPECT_EQ(sparse.node_count(), 50u);  // 50 dev/km^2 on 1 km^2
}

TEST(ScenarioCatalog, EveryPresetHasAKeyAndDescription) {
  for (const ScenarioSpec& spec : ScenarioCatalog::instance().specs()) {
    EXPECT_FALSE(spec.key.empty());
    EXPECT_FALSE(spec.description.empty());
    EXPECT_GT(spec.devices_per_km2, 0);
    EXPECT_GT(spec.node_count(), 0u);
  }
}

TEST(ScenarioCatalog, DynamicDensityKeysResolve) {
  const auto& catalog = ScenarioCatalog::instance();
  const ScenarioSpec spec = catalog.resolve("d150");
  EXPECT_EQ(spec.devices_per_km2, 150);
  EXPECT_EQ(spec.node_count(), 38u);  // round(150 * 0.25 km^2)
  EXPECT_EQ(density_key(150), "d150");

  EXPECT_FALSE(catalog.contains("d0"));
  EXPECT_FALSE(catalog.contains("d-5"));
  EXPECT_FALSE(catalog.contains("dxyz"));
  EXPECT_FALSE(catalog.contains("d15x"));
  EXPECT_FALSE(catalog.contains("d+300"));       // no sign
  EXPECT_FALSE(catalog.contains("d0100"));       // no leading zero
  EXPECT_FALSE(catalog.contains("d4294967397"));  // would wrap an int
}

TEST(ScenarioCatalog, UnknownKeyThrowsWithTheRegisteredList) {
  try {
    (void)ScenarioCatalog::instance().resolve("underwater");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("underwater"), std::string::npos);
    EXPECT_NE(message.find("d100"), std::string::npos);
    EXPECT_NE(message.find("static-grid"), std::string::npos);
  }
}

TEST(ScenarioCatalog, ProblemConfigWiresScaleAndScenarioThrough) {
  Scale scale;
  scale.networks = 4;
  scale.seed = 99;
  const ScenarioSpec spec = ScenarioCatalog::instance().resolve("sparse-wide");
  const aedb::AedbTuningProblem::Config config = spec.problem_config(scale);
  EXPECT_EQ(config.network_count, 4u);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.devices_per_km2, 50);
  EXPECT_EQ(config.scenario.network.area_width, 1000.0);

  // The tuning problem derives its node count from density x arena.
  const aedb::AedbTuningProblem problem(config);
  EXPECT_EQ(problem.config().scenario.network.node_count, 50u);
  EXPECT_EQ(problem.config().scenario.network.seed, 99u);
}

TEST(ScenarioCatalog, ScenarioConfigIsDeterministic) {
  const ScenarioSpec spec = ScenarioCatalog::instance().resolve("highspeed");
  const aedb::ScenarioConfig a = spec.scenario_config(7, 2);
  const aedb::ScenarioConfig b = spec.scenario_config(7, 2);
  EXPECT_EQ(a.network.node_count, b.network.node_count);
  EXPECT_EQ(a.network.seed, b.network.seed);
  EXPECT_EQ(a.network.network_index, 2u);
  EXPECT_EQ(a.network.max_speed, 30.0);
}

}  // namespace
}  // namespace aedbmls::expt
