#include "moo/core/front_io.hpp"

#include <gtest/gtest.h>

namespace aedbmls::moo {
namespace {

Solution make(std::vector<double> x, std::vector<double> objectives,
              double violation = 0.0) {
  Solution s;
  s.x = std::move(x);
  s.objectives = std::move(objectives);
  s.constraint_violation = violation;
  s.evaluated = true;
  return s;
}

TEST(FrontIo, CsvRoundTrip) {
  const std::vector<Solution> front{
      make({0.1, 0.2}, {1.0, 2.0, 3.0}, 0.0),
      make({0.3, 0.4}, {4.0, 5.0, 6.0}, 0.25),
  };
  const std::string csv = front_to_csv(front);
  const std::vector<Solution> back = front_from_csv(csv);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].x, front[0].x);
  EXPECT_EQ(back[0].objectives, front[0].objectives);
  EXPECT_DOUBLE_EQ(back[1].constraint_violation, 0.25);
  EXPECT_TRUE(back[0].evaluated);
}

TEST(FrontIo, EmptyFrontSerialisesEmpty) {
  EXPECT_TRUE(front_to_csv({}).empty());
  EXPECT_TRUE(front_from_csv("").empty());
}

TEST(FrontIo, MalformedHeaderThrows) {
  EXPECT_THROW((void)front_from_csv("a,b,c\n1,2,3\n"), std::runtime_error);
}

TEST(FrontIo, ShortRowThrows) {
  const std::string csv = "x0,f0,f1,cv\n0.5,1.0\n";
  EXPECT_THROW((void)front_from_csv(csv), std::runtime_error);
}

TEST(MergeFronts, KeepsOnlyGlobalNonDominated) {
  const std::vector<Solution> a{make({0.0}, {1.0, 4.0}),
                                make({0.0}, {4.0, 4.0})};
  const std::vector<Solution> b{make({0.0}, {2.0, 2.0}),
                                make({0.0}, {4.0, 1.0})};
  const auto merged = merge_fronts({a, b});
  // {4,4} is dominated by {2,2}; the rest are mutually non-dominated.
  EXPECT_EQ(merged.size(), 3u);
  for (const Solution& s : merged) {
    EXPECT_FALSE(s.objectives == (std::vector<double>{4.0, 4.0}));
  }
}

TEST(MergeFronts, EmptyInputs) {
  EXPECT_TRUE(merge_fronts({}).empty());
  EXPECT_TRUE(merge_fronts({{}, {}}).empty());
}

TEST(MergeFronts, ReferenceFrontConstruction) {
  // The paper merges 30 runs x 3 algorithms; shape-check with 3 fronts.
  std::vector<std::vector<Solution>> runs;
  for (int run = 0; run < 3; ++run) {
    std::vector<Solution> front;
    for (int i = 0; i <= 10; ++i) {
      const double x = i / 10.0;
      // Later runs are uniformly better: only the last run's points survive.
      front.push_back(make({x}, {x, 1.0 - x + 0.1 * (2 - run)}));
    }
    runs.push_back(std::move(front));
  }
  const auto reference = merge_fronts(runs);
  EXPECT_EQ(reference.size(), 11u);
  for (const Solution& s : reference) {
    EXPECT_NEAR(s.objectives[0] + s.objectives[1], 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace aedbmls::moo
