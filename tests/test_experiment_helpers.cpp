/// Tests of the expt scale plumbing (presets, flag overrides, CLI
/// validation) and the indicator-sample helpers — the code every
/// table/figure bench routes through.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "expt/experiment.hpp"
#include "expt/scale.hpp"

namespace aedbmls::expt {
namespace {

CliArgs args_of(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"bench"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(full.size()), full.data());
}

class ScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("AEDB_SCALE");
    ::unsetenv("AEDB_SCENARIO");
  }
};

TEST_F(ScaleTest, SmokeIsTheDefault) {
  const Scale scale = resolve_scale(args_of({}));
  EXPECT_EQ(scale.name, "smoke");
  EXPECT_EQ(scale.networks, 3u);
  EXPECT_EQ(scale.runs, 5u);
  EXPECT_EQ(scale.scenarios,
            (std::vector<std::string>{"d100", "d200", "d300"}));
}

TEST_F(ScaleTest, PaperPresetMatchesSectionFive) {
  const Scale scale = resolve_scale(args_of({"--scale=paper"}));
  EXPECT_EQ(scale.networks, 10u);
  EXPECT_EQ(scale.runs, 30u);
  EXPECT_EQ(scale.evals, 24000u);
  EXPECT_EQ(scale.mls_populations, 8u);
  EXPECT_EQ(scale.mls_threads, 12u);
  EXPECT_EQ(scale.mls_evals_per_thread(), 250u);  // 24000 / 96, exact
  EXPECT_EQ(scale.mls_extra_evaluation_workers(), 0u);
  EXPECT_EQ(scale.mls_total_evaluations(), 24000u);
}

TEST_F(ScaleTest, MlsBudgetRemainderIsDistributedNotTruncated) {
  Scale scale;
  scale.evals = 120;
  scale.mls_populations = 8;
  scale.mls_threads = 12;  // 96 workers: the old division dropped 24 evals
  EXPECT_EQ(scale.mls_evals_per_thread(), 1u);
  EXPECT_EQ(scale.mls_extra_evaluation_workers(), 24u);
  EXPECT_EQ(scale.mls_total_evaluations(), 120u);

  // Budget smaller than the worker grid: the per-worker minimum of one
  // evaluation dominates and the effective total is reported, not hidden.
  scale.evals = 50;
  EXPECT_EQ(scale.mls_evals_per_thread(), 1u);
  EXPECT_EQ(scale.mls_extra_evaluation_workers(), 0u);
  EXPECT_EQ(scale.mls_total_evaluations(), 96u);
}

TEST_F(ScaleTest, EnvironmentVariableSelectsPreset) {
  ::setenv("AEDB_SCALE", "small", 1);
  const Scale scale = resolve_scale(args_of({}));
  EXPECT_EQ(scale.name, "small");
  EXPECT_EQ(scale.runs, 10u);
  ::unsetenv("AEDB_SCALE");
}

TEST_F(ScaleTest, FlagsOverridePreset) {
  const Scale scale = resolve_scale(
      args_of({"--runs=7", "--evals=99", "--networks=2", "--densities=100,300",
               "--seed=5"}));
  EXPECT_EQ(scale.runs, 7u);
  EXPECT_EQ(scale.evals, 99u);
  EXPECT_EQ(scale.networks, 2u);
  EXPECT_EQ(scale.scenarios, (std::vector<std::string>{"d100", "d300"}));
  EXPECT_EQ(scale.seed, 5u);
}

TEST_F(ScaleTest, ScenarioFlagSelectsCatalogKeys) {
  const Scale scale =
      resolve_scale(args_of({"--scenarios=sparse-wide,highspeed"}));
  EXPECT_EQ(scale.scenarios,
            (std::vector<std::string>{"sparse-wide", "highspeed"}));
  const Scale single = resolve_scale(args_of({"--scenario=static-grid"}));
  EXPECT_EQ(single.scenarios, (std::vector<std::string>{"static-grid"}));
}

TEST_F(ScaleTest, ScenarioEnvironmentVariableIsHonoured) {
  ::setenv("AEDB_SCENARIO", "d150", 1);
  const Scale scale = resolve_scale(args_of({}));
  EXPECT_EQ(scale.scenarios, (std::vector<std::string>{"d150"}));
  ::unsetenv("AEDB_SCENARIO");
}

TEST_F(ScaleTest, UnknownScaleNameIsRejectedWithTheOptions) {
  try {
    (void)resolve_scale(args_of({"--scale=bogus"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("bogus"), std::string::npos);
    EXPECT_NE(message.find("smoke"), std::string::npos);
    EXPECT_NE(message.find("paper"), std::string::npos);
  }
}

TEST_F(ScaleTest, UnknownScenarioIsRejectedWithTheCatalog) {
  try {
    (void)resolve_scale(args_of({"--scenarios=d100,underwater"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("underwater"), std::string::npos);
    EXPECT_NE(message.find("sparse-wide"), std::string::npos);
  }
}

TEST_F(ScaleTest, MalformedDensitiesAreRejected) {
  EXPECT_THROW((void)resolve_scale(args_of({"--densities="})),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_scale(args_of({"--densities=100,-50"})),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_scale(args_of({"--densities=abc"})),
               std::invalid_argument);
}

TEST_F(ScaleTest, ConflictingWorkloadSpellingsAreRejected) {
  // --scenario(s) and --densities name the same sweep; mixing them used to
  // silently drop the --densities list.
  for (const char* scenario_flag :
       {"--scenario=d100", "--scenarios=d100,sparse-wide"}) {
    try {
      (void)resolve_scale(args_of({scenario_flag, "--densities=200,300"}));
      FAIL() << "expected std::invalid_argument for " << scenario_flag;
    } catch (const std::invalid_argument& error) {
      const std::string message = error.what();
      EXPECT_NE(message.find("--scenario(s)"), std::string::npos);
      EXPECT_NE(message.find("--densities"), std::string::npos);
    }
  }
  EXPECT_THROW((void)resolve_scale(args_of(
                   {"--scenario=d100", "--scenarios=sparse-wide"})),
               std::invalid_argument);
}

TEST_F(ScaleTest, NonPositiveNumericOverridesAreRejected) {
  EXPECT_THROW((void)resolve_scale(args_of({"--runs=0"})),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_scale(args_of({"--evals=-5"})),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_scale(args_of({"--networks=two"})),
               std::invalid_argument);
}

TEST_F(ScaleTest, MalformedSeedIsRejectedNotSilentlyDefaulted) {
  EXPECT_THROW((void)resolve_scale(args_of({"--seed=0x2a"})),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_scale(args_of({"--seed=-1"})),
               std::invalid_argument);
  EXPECT_EQ(resolve_scale(args_of({"--seed=0"})).seed, 0u);
}

TEST_F(ScaleTest, DuplicateScenariosAreRejected) {
  EXPECT_THROW((void)resolve_scale(args_of({"--scenarios=d100,d100"})),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_scale(args_of({"--densities=100,100"})),
               std::invalid_argument);
}

TEST(DominanceCount, CountsDominatedTargets) {
  auto make = [](double f1, double f2) {
    moo::Solution s;
    s.objectives = {f1, f2};
    s.evaluated = true;
    return s;
  };
  const std::vector<moo::Solution> strong{make(0.0, 0.0)};
  const std::vector<moo::Solution> weak{make(1.0, 1.0), make(2.0, 2.0),
                                        make(-1.0, 5.0)};
  EXPECT_EQ(dominance_count(strong, weak), 2u);  // (-1,5) not dominated
  EXPECT_EQ(dominance_count(weak, strong), 0u);
}

TEST(Extract, FiltersByAlgorithmAndScenario) {
  std::vector<IndicatorSample> samples;
  for (const char* scenario : {"d100", "d200"}) {
    for (int run = 0; run < 3; ++run) {
      IndicatorSample s;
      s.algorithm = run % 2 == 0 ? "A" : "B";
      s.scenario = scenario;
      s.hypervolume = (scenario == std::string("d100") ? 100 : 200) + run;
      samples.push_back(s);
    }
  }
  const auto a100 =
      extract(samples, "A", "d100", &IndicatorSample::hypervolume);
  EXPECT_EQ(a100.size(), 2u);  // runs 0 and 2
  EXPECT_DOUBLE_EQ(a100[0], 100.0);
  EXPECT_DOUBLE_EQ(a100[1], 102.0);
  EXPECT_TRUE(
      extract(samples, "C", "d100", &IndicatorSample::hypervolume).empty());
}

}  // namespace
}  // namespace aedbmls::expt
