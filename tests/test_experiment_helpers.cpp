/// Tests of the bench experiment harness (scale presets, flag overrides,
/// the algorithm factory, indicator-sample plumbing) — the code every
/// table/figure bench routes through.

#include <gtest/gtest.h>

#include <cstdlib>

#include "experiment/runners.hpp"
#include "experiment/scale.hpp"

namespace aedbmls::expt {
namespace {

CliArgs args_of(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"bench"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(full.size()), full.data());
}

TEST(Scale, SmokeIsTheDefault) {
  ::unsetenv("AEDB_SCALE");
  const Scale scale = resolve_scale(args_of({}));
  EXPECT_EQ(scale.name, "smoke");
  EXPECT_EQ(scale.networks, 3u);
  EXPECT_EQ(scale.runs, 5u);
  EXPECT_EQ(scale.densities, (std::vector<int>{100, 200, 300}));
}

TEST(Scale, PaperPresetMatchesSectionFive) {
  const Scale scale = resolve_scale(args_of({"--scale=paper"}));
  EXPECT_EQ(scale.networks, 10u);
  EXPECT_EQ(scale.runs, 30u);
  EXPECT_EQ(scale.evals, 24000u);
  EXPECT_EQ(scale.mls_populations, 8u);
  EXPECT_EQ(scale.mls_threads, 12u);
  EXPECT_EQ(scale.mls_evals_per_thread(), 250u);  // 24000 / 96
}

TEST(Scale, EnvironmentVariableSelectsPreset) {
  ::setenv("AEDB_SCALE", "small", 1);
  const Scale scale = resolve_scale(args_of({}));
  EXPECT_EQ(scale.name, "small");
  EXPECT_EQ(scale.runs, 10u);
  ::unsetenv("AEDB_SCALE");
}

TEST(Scale, FlagsOverridePreset) {
  const Scale scale = resolve_scale(
      args_of({"--runs=7", "--evals=99", "--networks=2", "--densities=100,300",
               "--seed=5"}));
  EXPECT_EQ(scale.runs, 7u);
  EXPECT_EQ(scale.evals, 99u);
  EXPECT_EQ(scale.networks, 2u);
  EXPECT_EQ(scale.densities, (std::vector<int>{100, 300}));
  EXPECT_EQ(scale.seed, 5u);
}

TEST(Scale, UnknownNameFallsBackToSmoke) {
  const Scale scale = resolve_scale(args_of({"--scale=bogus"}));
  EXPECT_EQ(scale.name, "smoke");
}

TEST(Factory, ProblemConfigSharesSeedAcrossAlgorithms) {
  const Scale scale = resolve_scale(args_of({}));
  const auto a = problem_config(100, scale);
  const auto b = problem_config(100, scale);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.network_count, scale.networks);
  EXPECT_EQ(problem_config(300, scale).devices_per_km2, 300);
}

TEST(Factory, AllAlgorithmNamesConstruct) {
  const Scale scale = resolve_scale(args_of({"--evals=40"}));
  for (const char* name :
       {"NSGAII", "CellDE", "AEDB-MLS", "AEDB-MLS-sym", "AEDB-MLS-unguided",
        "AEDB-MLS-pervar", "CellDE+MLS", "Random"}) {
    const auto algorithm = make_algorithm(name, scale);
    ASSERT_NE(algorithm, nullptr) << name;
  }
  EXPECT_EQ(make_algorithm("NSGAII", scale)->name(), "NSGAII");
  EXPECT_EQ(make_algorithm("AEDB-MLS", scale)->name(), "AEDB-MLS");
}

TEST(Factory, PaperAlgorithmListMatchesSectionSix) {
  EXPECT_EQ(paper_algorithms(),
            (std::vector<std::string>{"CellDE", "NSGAII", "AEDB-MLS"}));
}

TEST(DominanceCount, CountsDominatedTargets) {
  auto make = [](double f1, double f2) {
    moo::Solution s;
    s.objectives = {f1, f2};
    s.evaluated = true;
    return s;
  };
  const std::vector<moo::Solution> strong{make(0.0, 0.0)};
  const std::vector<moo::Solution> weak{make(1.0, 1.0), make(2.0, 2.0),
                                        make(-1.0, 5.0)};
  EXPECT_EQ(dominance_count(strong, weak), 2u);  // (-1,5) not dominated
  EXPECT_EQ(dominance_count(weak, strong), 0u);
}

TEST(Extract, FiltersByAlgorithmAndDensity) {
  std::vector<IndicatorSample> samples;
  for (int density : {100, 200}) {
    for (int run = 0; run < 3; ++run) {
      IndicatorSample s;
      s.algorithm = run % 2 == 0 ? "A" : "B";
      s.density = density;
      s.hypervolume = density + run;
      samples.push_back(s);
    }
  }
  const auto a100 =
      extract(samples, "A", 100, &IndicatorSample::hypervolume);
  EXPECT_EQ(a100.size(), 2u);  // runs 0 and 2
  EXPECT_DOUBLE_EQ(a100[0], 100.0);
  EXPECT_DOUBLE_EQ(a100[1], 102.0);
  EXPECT_TRUE(extract(samples, "C", 100, &IndicatorSample::hypervolume).empty());
}

TEST(Runner, TinyRepeatRunProducesSeededRecords) {
  Scale scale = resolve_scale(args_of({"--runs=2", "--evals=16", "--networks=1"}));
  scale.mls_populations = 1;
  scale.mls_threads = 2;
  const auto records = run_repeats("AEDB-MLS", 100, scale, nullptr);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].run_seed, records[1].run_seed);
  EXPECT_EQ(records[0].algorithm, "AEDB-MLS");
  EXPECT_EQ(records[0].density, 100);
  EXPECT_GE(records[0].evaluations, 16u);
}

}  // namespace
}  // namespace aedbmls::expt
