/// Randomised conservation stress of the PHY/MAC stack: for any traffic
/// pattern, every signal a receiver's PHY sees must be accounted for by
/// exactly one of its counters, and global accounting must balance what
/// the channel delivered.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/core/simulator.hpp"
#include "sim/mobility/mobility_model.hpp"
#include "sim/net/csma_mac.hpp"
#include "sim/net/wireless_channel.hpp"
#include "sim/net/wireless_phy.hpp"
#include "sim/propagation/log_distance.hpp"

namespace aedbmls::sim {
namespace {

struct StressCase {
  std::uint64_t seed;
  std::size_t stations;
  int frames;
  double area;
};

class PhyConservation : public ::testing::TestWithParam<StressCase> {};

TEST_P(PhyConservation, EverySignalAccountedFor) {
  const StressCase c = GetParam();
  Simulator simulator(c.seed);
  const LogDistancePropagation propagation;
  WirelessChannel channel(simulator, propagation, true);

  struct Station {
    std::unique_ptr<ConstantPositionMobility> mobility;
    std::unique_ptr<WirelessPhy> phy;
    std::unique_ptr<CsmaBroadcastMac> mac;
    std::uint64_t delivered = 0;
  };
  std::vector<std::unique_ptr<Station>> stations;
  Xoshiro256 rng(c.seed);
  for (std::size_t i = 0; i < c.stations; ++i) {
    auto station = std::make_unique<Station>();
    station->mobility = std::make_unique<ConstantPositionMobility>(
        Vec2{rng.uniform(0.0, c.area), rng.uniform(0.0, c.area)});
    station->phy = std::make_unique<WirelessPhy>(simulator, PhyParams{},
                                                 static_cast<NodeId>(i));
    channel.attach(station->phy.get(), station->mobility.get());
    station->mac = std::make_unique<CsmaBroadcastMac>(
        simulator, *station->phy, CsmaBroadcastMac::Params{}, c.seed + i);
    Station* raw = station.get();
    station->phy->set_receive_callback(
        [raw](const Frame&, double) { ++raw->delivered; });
    stations.push_back(std::move(station));
  }

  // Random bursts of traffic from random stations at random times.
  for (int f = 0; f < c.frames; ++f) {
    const std::size_t sender = rng.uniform_int(stations.size());
    const double at = rng.uniform(0.0, 2.0);
    const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(32, 512));
    simulator.schedule_at(seconds_d(at), [&stations, sender, bytes] {
      Frame frame;
      frame.kind = FrameKind::kData;
      frame.size_bytes = bytes;
      stations[sender]->mac->enqueue(frame, 16.02);
    });
  }
  simulator.run();

  std::uint64_t signals_seen = 0;
  std::uint64_t frames_sent = 0;
  for (const auto& station : stations) {
    const WirelessPhy::Counters& counters = station->phy->counters();
    // Per-receiver conservation: every begin_rx ends in exactly one bucket.
    const std::uint64_t accounted = counters.rx_ok + counters.rx_failed_sinr +
                                    counters.rx_aborted_by_tx +
                                    counters.rx_missed_busy +
                                    counters.rx_below_sensitivity;
    signals_seen += accounted;
    frames_sent += counters.tx_frames;
    // Delivered callbacks equal decoded frames.
    EXPECT_EQ(station->delivered, counters.rx_ok);
    // MAC and PHY agree on how much was transmitted.
    EXPECT_EQ(station->mac->counters().sent + station->mac->counters().dropped,
              station->mac->counters().enqueued);
    EXPECT_EQ(station->mac->counters().sent, counters.tx_frames);
  }
  // Global conservation: the channel delivered exactly the signals the
  // receivers accounted for (those above the interference floor).
  EXPECT_EQ(channel.signals_delivered(), signals_seen);
  EXPECT_GT(frames_sent, 0u);
}

TEST_P(PhyConservation, DeterministicAcrossIdenticalRuns) {
  const StressCase c = GetParam();
  auto run_once = [&c]() {
    Simulator simulator(c.seed);
    const LogDistancePropagation propagation;
    WirelessChannel channel(simulator, propagation, true);
    std::vector<std::unique_ptr<ConstantPositionMobility>> mobilities;
    std::vector<std::unique_ptr<WirelessPhy>> phys;
    std::vector<std::unique_ptr<CsmaBroadcastMac>> macs;
    Xoshiro256 rng(c.seed);
    for (std::size_t i = 0; i < c.stations; ++i) {
      mobilities.push_back(std::make_unique<ConstantPositionMobility>(
          Vec2{rng.uniform(0.0, c.area), rng.uniform(0.0, c.area)}));
      phys.push_back(std::make_unique<WirelessPhy>(simulator, PhyParams{},
                                                   static_cast<NodeId>(i)));
      channel.attach(phys.back().get(), mobilities.back().get());
      macs.push_back(std::make_unique<CsmaBroadcastMac>(
          simulator, *phys.back(), CsmaBroadcastMac::Params{}, c.seed + i));
    }
    for (int f = 0; f < c.frames; ++f) {
      const std::size_t sender = rng.uniform_int(phys.size());
      const double at = rng.uniform(0.0, 2.0);
      simulator.schedule_at(seconds_d(at), [&macs, sender] {
        Frame frame;
        frame.kind = FrameKind::kData;
        frame.size_bytes = 128;
        macs[sender]->enqueue(frame, 16.02);
      });
    }
    simulator.run();
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    for (const auto& phy : phys) {
      ok += phy->counters().rx_ok;
      failed += phy->counters().rx_failed_sinr;
    }
    return std::tuple{simulator.executed_events(), ok, failed};
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    TrafficPatterns, PhyConservation,
    ::testing::Values(StressCase{1, 5, 50, 300.0}, StressCase{2, 10, 100, 500.0},
                      StressCase{3, 20, 200, 400.0},
                      StressCase{4, 8, 150, 150.0}),  // dense: heavy collisions
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return "case" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace aedbmls::sim
