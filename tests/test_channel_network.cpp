#include <gtest/gtest.h>

#include "sim/core/simulator.hpp"
#include "sim/net/network.hpp"

namespace aedbmls::sim {
namespace {

NetworkConfig small_config() {
  NetworkConfig config;
  config.node_count = 10;
  config.seed = 77;
  config.network_index = 0;
  return config;
}

TEST(Network, BuildsRequestedNodeCount) {
  Simulator simulator(1);
  Network network(simulator, small_config());
  EXPECT_EQ(network.size(), 10u);
  EXPECT_EQ(network.channel().device_count(), 10u);
}

TEST(Network, NodesHaveDistinctIdsAndPositions) {
  Simulator simulator(1);
  Network network(simulator, small_config());
  for (std::size_t i = 0; i < network.size(); ++i) {
    EXPECT_EQ(network.node(i).id(), i);
    for (std::size_t j = i + 1; j < network.size(); ++j) {
      const Vec2 a = network.node(i).position(Time{});
      const Vec2 b = network.node(j).position(Time{});
      EXPECT_FALSE(a.x == b.x && a.y == b.y);
    }
  }
}

TEST(Network, SameSeedSameTopology) {
  Simulator sim_a(1);
  Simulator sim_b(2);  // simulator seed must NOT affect topology
  Network a(sim_a, small_config());
  Network b(sim_b, small_config());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec2 pa = a.node(i).position(seconds(33));
    const Vec2 pb = b.node(i).position(seconds(33));
    EXPECT_DOUBLE_EQ(pa.x, pb.x);
    EXPECT_DOUBLE_EQ(pa.y, pb.y);
  }
}

TEST(Network, DifferentNetworkIndexDifferentTopology) {
  Simulator simulator(1);
  NetworkConfig config_b = small_config();
  config_b.network_index = 1;
  Network a(simulator, small_config());
  Network b(simulator, config_b);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec2 pa = a.node(i).position(Time{});
    const Vec2 pb = b.node(i).position(Time{});
    if (pa.x != pb.x || pa.y != pb.y) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(Network, StaticNodesDoNotMove) {
  Simulator simulator(1);
  NetworkConfig config = small_config();
  config.static_nodes = true;
  Network network(simulator, config);
  const Vec2 before = network.node(3).position(Time{});
  const Vec2 after = network.node(3).position(seconds(100));
  EXPECT_DOUBLE_EQ(before.x, after.x);
  EXPECT_DOUBLE_EQ(before.y, after.y);
}

TEST(Network, MobileNodesMove) {
  Simulator simulator(1);
  Network network(simulator, small_config());
  bool any_moved = false;
  for (std::size_t i = 0; i < network.size(); ++i) {
    const Vec2 before = network.node(i).position(Time{});
    const Vec2 after = network.node(i).position(seconds(30));
    if (before.x != after.x || before.y != after.y) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(Network, MobilityKindsAllBuildAndMove) {
  for (const MobilityKind kind :
       {MobilityKind::kRandomWalk, MobilityKind::kRandomWaypoint,
        MobilityKind::kGaussMarkov}) {
    Simulator simulator(1);
    NetworkConfig config = small_config();
    config.mobility = kind;
    Network network(simulator, config);
    bool any_moved = false;
    for (std::size_t i = 0; i < network.size(); ++i) {
      const Vec2 before = network.node(i).position(Time{});
      const Vec2 after = network.node(i).position(seconds(60));
      if (before.x != after.x || before.y != after.y) any_moved = true;
      EXPECT_GE(after.x, 0.0);
      EXPECT_LE(after.x, 500.0);
    }
    EXPECT_TRUE(any_moved) << "mobility kind " << static_cast<int>(kind);
  }
}

TEST(Network, ShadowingChangesLinkBudgetDeterministically) {
  NetworkConfig config = small_config();
  config.static_nodes = true;
  config.shadowing_sigma_db = 6.0;

  auto measure = [](const NetworkConfig& c) {
    Simulator simulator(1);
    Network network(simulator, c);
    double sum_rx = 0.0;
    int received = 0;
    for (std::size_t i = 1; i < network.size(); ++i) {
      network.node(i).device().set_rx_callback(
          [&](const Frame&, double rx_dbm) {
            sum_rx += rx_dbm;
            ++received;
          });
    }
    Frame frame;
    frame.kind = FrameKind::kData;
    frame.size_bytes = 64;
    network.node(0).device().send(frame, 16.02);
    simulator.run();
    return std::pair{received, sum_rx};
  };

  const auto with_a = measure(config);
  const auto with_b = measure(config);
  EXPECT_EQ(with_a, with_b);  // deterministic shadow field

  NetworkConfig clean = config;
  clean.shadowing_sigma_db = 0.0;
  const auto without = measure(clean);
  EXPECT_TRUE(with_a.first != without.first || with_a.second != without.second);
}

TEST(Network, BroadcastReachesNeighboursEndToEnd) {
  Simulator simulator(1);
  NetworkConfig config = small_config();
  config.static_nodes = true;
  Network network(simulator, config);
  int received = 0;
  for (std::size_t i = 1; i < network.size(); ++i) {
    network.node(i).device().set_rx_callback(
        [&](const Frame&, double) { ++received; });
  }
  Frame frame;
  frame.kind = FrameKind::kData;
  frame.size_bytes = 64;
  network.node(0).device().send(frame, 16.02);
  simulator.run();
  EXPECT_GT(received, 0);
  EXPECT_GT(network.channel().signals_delivered(), 0u);
}

}  // namespace
}  // namespace aedbmls::sim
