/// End-to-end pipeline at smoke scale: real simulator-backed tuning problem,
/// all three algorithms, indicator computation against a merged reference —
/// the complete Figure-6/7 pipeline in miniature.

#include <gtest/gtest.h>

#include <cmath>

#include "aedb/tuning_problem.hpp"
#include "core/mls.hpp"
#include "moo/algorithms/nsga2.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/normalization.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/indicators/igd.hpp"
#include "moo/indicators/spread.hpp"

namespace aedbmls {
namespace {

aedb::AedbTuningProblem::Config smoke_problem_config() {
  aedb::AedbTuningProblem::Config config;
  config.devices_per_km2 = 100;
  config.network_count = 2;
  config.seed = 314;
  return config;
}

TEST(Integration, MlsTunesTheRealSimulatorProblem) {
  const aedb::AedbTuningProblem problem(smoke_problem_config());
  core::MlsConfig config;
  config.populations = 2;
  config.threads_per_population = 2;
  config.evaluations_per_thread = 12;
  config.reset_period = 5;
  config.archive_capacity = 30;
  config.criteria = core::aedb_criteria();
  core::AedbMls mls(config);

  const moo::AlgorithmResult result = mls.run(problem, 1);
  ASSERT_FALSE(result.front.empty());
  for (const moo::Solution& s : result.front) {
    EXPECT_TRUE(s.evaluated);
    EXPECT_EQ(s.x.size(), 5u);
    EXPECT_EQ(s.objectives.size(), 3u);
    // Objective sanity: energy finite, coverage in [-24, 0], forwards >= 0.
    EXPECT_GE(-s.objectives[1], 0.0);
    EXPECT_LE(-s.objectives[1], 24.0);
    EXPECT_GE(s.objectives[2], 0.0);
  }
  EXPECT_GE(problem.evaluations(), result.evaluations);
}

TEST(Integration, IndicatorPipelineOnRealFronts) {
  const aedb::AedbTuningProblem problem(smoke_problem_config());

  core::MlsConfig mls_config;
  mls_config.populations = 1;
  mls_config.threads_per_population = 2;
  mls_config.evaluations_per_thread = 10;
  mls_config.reset_period = 4;
  mls_config.criteria = core::aedb_criteria();
  core::AedbMls mls(mls_config);
  const moo::AlgorithmResult mls_result = mls.run(problem, 2);

  moo::Nsga2::Config nsga_config;
  nsga_config.population_size = 8;
  nsga_config.max_evaluations = 24;
  moo::Nsga2 nsga2(nsga_config);
  const moo::AlgorithmResult nsga_result = nsga2.run(problem, 2);

  ASSERT_FALSE(mls_result.front.empty());
  ASSERT_FALSE(nsga_result.front.empty());

  // Reference front and normalised indicators, exactly like the benches.
  const auto reference =
      moo::merge_fronts({mls_result.front, nsga_result.front});
  ASSERT_FALSE(reference.empty());
  const moo::ObjectiveBounds bounds = moo::bounds_of(reference);
  const auto mls_norm = moo::normalize_front(mls_result.front, bounds);
  const auto ref_norm = moo::normalize_front(reference, bounds);

  const double hv = moo::hypervolume(mls_norm, moo::unit_reference(3));
  const double igd = moo::paper_igd(mls_norm, ref_norm);
  const double spread = moo::generalized_spread(mls_norm, ref_norm);
  EXPECT_GE(hv, 0.0);
  EXPECT_GE(igd, 0.0);
  EXPECT_GE(spread, 0.0);
  EXPECT_TRUE(std::isfinite(hv + igd + spread));
}

TEST(Integration, FrontSurvivesCsvRoundTrip) {
  const aedb::AedbTuningProblem problem(smoke_problem_config());
  core::MlsConfig config;
  config.populations = 1;
  config.threads_per_population = 2;
  config.evaluations_per_thread = 6;
  config.reset_period = 3;
  core::AedbMls mls(config);
  const moo::AlgorithmResult result = mls.run(problem, 3);
  ASSERT_FALSE(result.front.empty());

  const std::string csv = moo::front_to_csv(result.front);
  const auto restored = moo::front_from_csv(csv);
  ASSERT_EQ(restored.size(), result.front.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].objectives, result.front[i].objectives);
  }
}

}  // namespace
}  // namespace aedbmls
