#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/core/simulator.hpp"
#include "sim/mobility/mobility_model.hpp"
#include "sim/net/wireless_channel.hpp"
#include "sim/net/wireless_phy.hpp"
#include "sim/propagation/log_distance.hpp"

namespace aedbmls::sim {
namespace {

/// Two/three PHYs on a line with constant positions and ns-3-like radio
/// parameters; distances chosen against the log-distance defaults
/// (16.02 dBm reaches ~-95 dBm at ~140 m).
class PhyFixture : public ::testing::Test {
 protected:
  void add_node(double x) {
    const auto id = static_cast<NodeId>(mobilities_.size());
    mobilities_.push_back(std::make_unique<ConstantPositionMobility>(Vec2{x, 0.0}));
    phys_.push_back(std::make_unique<WirelessPhy>(simulator_, params_, id));
    channel_.attach(phys_.back().get(), mobilities_.back().get());
  }

  Frame data_frame(std::uint32_t bytes = 256) {
    Frame frame;
    frame.kind = FrameKind::kData;
    frame.size_bytes = bytes;
    frame.message_id = 1;
    return frame;
  }

  Simulator simulator_{1};
  PhyParams params_{};
  LogDistancePropagation propagation_{};
  WirelessChannel channel_{simulator_, propagation_, true};
  std::vector<std::unique_ptr<ConstantPositionMobility>> mobilities_;
  std::vector<std::unique_ptr<WirelessPhy>> phys_;
};

TEST_F(PhyFixture, FrameDurationMatchesBitrateAndPreamble) {
  add_node(0.0);
  // 256 bytes at 1 Mb/s = 2048 us, plus 192 us preamble.
  EXPECT_EQ(phys_[0]->frame_duration(256), microseconds(2240));
  EXPECT_EQ(phys_[0]->frame_duration(0), microseconds(192));
}

TEST_F(PhyFixture, DeliversFrameWithExpectedPower) {
  add_node(0.0);
  add_node(100.0);
  double rx_power = 0.0;
  int received = 0;
  phys_[1]->set_receive_callback([&](const Frame& frame, double dbm) {
    ++received;
    rx_power = dbm;
    EXPECT_EQ(frame.sender, 0u);
    EXPECT_EQ(frame.message_id, 1u);
  });
  phys_[0]->start_tx(data_frame(), 16.02);
  simulator_.run();
  EXPECT_EQ(received, 1);
  EXPECT_NEAR(rx_power, 16.02 - 46.6777 - 60.0, 1e-9);  // 100 m, exp 3
  EXPECT_EQ(phys_[1]->counters().rx_ok, 1u);
}

TEST_F(PhyFixture, SignalBelowSensitivityNotDelivered) {
  add_node(0.0);
  add_node(400.0);  // rx ~ -109 dBm, below -95 sensitivity
  int received = 0;
  phys_[1]->set_receive_callback([&](const Frame&, double) { ++received; });
  phys_[0]->start_tx(data_frame(), 16.02);
  simulator_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(phys_[1]->counters().rx_below_sensitivity, 1u);
}

TEST_F(PhyFixture, ConcurrentEqualPowerTransmissionsCollide) {
  add_node(0.0);
  add_node(100.0);  // receiver in the middle
  add_node(200.0);
  int received = 0;
  phys_[1]->set_receive_callback([&](const Frame&, double) { ++received; });
  // Both neighbours transmit simultaneously: equal power at the receiver,
  // SINR ~ 0 dB < 6 dB threshold => the locked frame is lost.
  phys_[0]->start_tx(data_frame(), 16.02);
  phys_[2]->start_tx(data_frame(), 16.02);
  simulator_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(phys_[1]->counters().rx_failed_sinr, 1u);
  EXPECT_EQ(phys_[1]->counters().rx_missed_busy, 1u);
}

TEST_F(PhyFixture, StrongSignalSurvivesWeakInterferer) {
  add_node(0.0);
  add_node(20.0);   // strong link: ~20 m
  add_node(220.0);  // interferer 200 m from the receiver (>= 20 dB weaker)
  int received = 0;
  phys_[1]->set_receive_callback([&](const Frame&, double) { ++received; });
  phys_[0]->start_tx(data_frame(), 16.02);
  phys_[2]->start_tx(data_frame(), 16.02);
  simulator_.run();
  EXPECT_EQ(received, 1);  // capture: SINR comfortably above threshold
}

TEST_F(PhyFixture, HalfDuplexAbortsReception) {
  add_node(0.0);
  add_node(100.0);
  int received = 0;
  phys_[1]->set_receive_callback([&](const Frame&, double) { ++received; });
  phys_[0]->start_tx(data_frame(), 16.02);
  // Receiver starts its own transmission mid-reception.
  simulator_.schedule(microseconds(500), [&] {
    phys_[1]->start_tx(data_frame(64), 16.02);
  });
  simulator_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(phys_[1]->counters().rx_aborted_by_tx, 1u);
}

TEST_F(PhyFixture, MediumBusyDuringNeighbourTransmission) {
  add_node(0.0);
  add_node(100.0);
  EXPECT_FALSE(phys_[1]->medium_busy());
  phys_[0]->start_tx(data_frame(), 16.02);
  bool busy_mid = false;
  simulator_.schedule(microseconds(1000), [&] { busy_mid = phys_[1]->medium_busy(); });
  simulator_.run();
  EXPECT_TRUE(busy_mid);
  EXPECT_FALSE(phys_[1]->medium_busy());  // idle again after the frame
}

TEST_F(PhyFixture, CarrierSenseBeyondDecodeRange) {
  add_node(0.0);
  add_node(180.0);  // rx ~ -98.3 dBm: below sensitivity, above cs (-99)
  phys_[0]->start_tx(data_frame(), 16.02);
  bool busy_mid = false;
  simulator_.schedule(microseconds(1000), [&] { busy_mid = phys_[1]->medium_busy(); });
  simulator_.run();
  EXPECT_TRUE(busy_mid);
  EXPECT_EQ(phys_[1]->counters().rx_ok, 0u);
}

TEST_F(PhyFixture, RefusesDoubleTransmit) {
  add_node(0.0);
  add_node(100.0);
  EXPECT_TRUE(phys_[0]->start_tx(data_frame(), 16.02));
  EXPECT_FALSE(phys_[0]->start_tx(data_frame(), 16.02));
  simulator_.run();
  EXPECT_EQ(phys_[0]->counters().tx_frames, 1u);
}

TEST_F(PhyFixture, TxPowerClampedToRadioRange) {
  add_node(0.0);
  add_node(10.0);
  double rx_power = -1000.0;
  phys_[1]->set_receive_callback([&](const Frame& frame, double dbm) {
    rx_power = dbm;
    EXPECT_DOUBLE_EQ(frame.tx_power_dbm, params_.max_tx_power_dbm);
  });
  phys_[0]->start_tx(data_frame(), 99.0);  // far above the radio max
  simulator_.run();
  EXPECT_NEAR(rx_power, params_.max_tx_power_dbm - 46.6777 - 30.0, 1e-9);
}

TEST_F(PhyFixture, PropagationDelayOrdersReceptions) {
  add_node(0.0);
  add_node(30.0);
  add_node(300000.0);  // 1 ms away at light speed — exaggerated distance
  // The far node is out of range, but the near one must see the frame after
  // a ~100 ns flight time, not instantly.
  Time rx_start{};
  phys_[1]->set_receive_callback([&](const Frame&, double) {
    rx_start = simulator_.now();
  });
  phys_[0]->start_tx(data_frame(), 16.02);
  simulator_.run();
  const Time expected_flight = seconds_d(30.0 / 299792458.0);
  const Time frame_time = phys_[1]->frame_duration(256);
  EXPECT_EQ(rx_start, expected_flight + frame_time);
}

}  // namespace
}  // namespace aedbmls::sim
