/// Golden-value regression pins: the exact indicator-CSV bytes of one
/// campaign cell per catalog regime, captured from the hash-map statistics
/// path before the SoA (flat NodeId-indexed) rewrite.  The flat path must
/// reproduce these byte-for-byte — any drift means the statistics rewrite
/// (or anything upstream of it) changed simulated behaviour, not just its
/// storage layout.
///
/// Regenerate after an *intentional* behaviour change with:
///   AEDB_REGENERATE_GOLDEN=1 ./test_golden_indicators
/// which rewrites tests/golden/indicators_<regime>.csv in the source tree.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "expt/experiment.hpp"
#include "expt/scale.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {
namespace {

/// One cheap cell: a single Random-search run on a single evaluation
/// network.  Random search exercises the full simulation hot path (16
/// spread-out candidates per regime) without an optimiser's own state
/// muddying attribution.
Scale golden_scale(const std::string& scenario) {
  Scale scale;
  scale.name = "golden";
  scale.networks = 1;
  scale.runs = 1;
  scale.evals = 16;
  scale.scenarios = {scenario};
  scale.seed = 20130520;
  return scale;
}

std::string golden_path(const std::string& scenario) {
  return std::string(AEDB_GOLDEN_DIR) + "/indicators_" + scenario + ".csv";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream data;
  data << in.rdbuf();
  return data.str();
}

std::string run_cell_csv(const std::string& scenario) {
  ExperimentDriver::Options options;
  options.workers = 1;
  options.use_cache = false;
  options.verbose = false;
  const ExperimentPlan plan =
      ExperimentPlan::of({"Random"}, golden_scale(scenario));
  const ExperimentResult result = ExperimentDriver(options).run(plan);
  return indicator_csv(result.samples);
}

class GoldenIndicators : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenIndicators, CellCsvBytesArePinned) {
  const std::string scenario = GetParam();
  const std::string csv = run_cell_csv(scenario);
  const std::string path = golden_path(scenario);

  if (std::getenv("AEDB_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << csv;
    GTEST_SKIP() << "regenerated " << path;
  }

  const auto golden = read_file(path);
  ASSERT_TRUE(golden.has_value())
      << path << " missing — run AEDB_REGENERATE_GOLDEN=1 to create it";
  EXPECT_EQ(csv, *golden)
      << "indicator CSV for '" << scenario
      << "' drifted from the pinned hash-map-path bytes";
}

INSTANTIATE_TEST_SUITE_P(
    EveryCatalogRegime, GoldenIndicators,
    ::testing::ValuesIn(ScenarioCatalog::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace aedbmls::expt
