/// Telemetry registry/snapshot semantics: instrument arithmetic, merge
/// associativity and commutativity (the property the cross-worker and
/// cross-rank aggregation contracts rest on), the line codec round-trip,
/// and the ProgressMeter fold.

#include "common/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace telemetry = aedbmls::telemetry;

namespace {

TEST(Counter, AddsAndResets) {
  telemetry::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeStat, TracksCountSumMinMax) {
  telemetry::GaugeStat gauge;
  gauge.observe(3.0);
  gauge.observe(-1.0);
  gauge.observe(2.5);
  EXPECT_EQ(gauge.count, 3u);
  EXPECT_DOUBLE_EQ(gauge.sum, 4.5);
  EXPECT_DOUBLE_EQ(gauge.min, -1.0);
  EXPECT_DOUBLE_EQ(gauge.max, 3.0);
  EXPECT_DOUBLE_EQ(gauge.mean(), 1.5);
}

TEST(GaugeStat, EmptyMergeIsIdentity) {
  telemetry::GaugeStat gauge;
  gauge.observe(7.0);
  const telemetry::GaugeStat before = gauge;
  gauge.merge(telemetry::GaugeStat{});
  EXPECT_EQ(gauge, before);

  // Merging into an empty gauge adopts the other side's min/max instead of
  // folding against the zero placeholders.
  telemetry::GaugeStat empty;
  empty.merge(before);
  EXPECT_EQ(empty, before);
}

TEST(GaugeStat, MergeMatchesDirectObservation) {
  telemetry::GaugeStat left;
  left.observe(5.0);
  left.observe(9.0);
  telemetry::GaugeStat right;
  right.observe(4.0);

  telemetry::GaugeStat merged = left;
  merged.merge(right);

  telemetry::GaugeStat direct;
  direct.observe(5.0);
  direct.observe(9.0);
  direct.observe(4.0);
  EXPECT_EQ(merged, direct);
}

TEST(HistogramStat, BucketsByBitWidth) {
  telemetry::HistogramStat hist;
  hist.observe(0);  // bucket 0
  hist.observe(1);  // bucket 1
  hist.observe(2);  // bucket 2: [2, 4)
  hist.observe(3);  // bucket 2
  hist.observe(4);  // bucket 3: [4, 8)
  hist.observe(std::numeric_limits<std::uint64_t>::max());  // bucket 64
  EXPECT_EQ(hist.count, 6u);
  EXPECT_EQ(hist.buckets[0], 1u);
  EXPECT_EQ(hist.buckets[1], 1u);
  EXPECT_EQ(hist.buckets[2], 2u);
  EXPECT_EQ(hist.buckets[3], 1u);
  EXPECT_EQ(hist.buckets[64], 1u);
}

TEST(HistogramStat, MergeIsExact) {
  telemetry::HistogramStat a;
  a.observe(1);
  a.observe(100);
  telemetry::HistogramStat b;
  b.observe(7);

  telemetry::HistogramStat merged = a;
  merged.merge(b);

  telemetry::HistogramStat direct;
  direct.observe(1);
  direct.observe(100);
  direct.observe(7);
  EXPECT_EQ(merged, direct);
}

TEST(Registry, HandlesAreFindOrCreate) {
  telemetry::Registry registry;
  telemetry::Counter& first = registry.counter("evals");
  first.add(3);
  telemetry::Counter& again = registry.counter("evals");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.value(), 3u);

  telemetry::GaugeStat& gauge = registry.gauge("wall");
  gauge.observe(1.0);
  EXPECT_EQ(&gauge, &registry.gauge("wall"));
}

TEST(Registry, HandlesSurviveGrowth) {
  telemetry::Registry registry;
  telemetry::Counter& pinned = registry.counter("pinned");
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("c" + std::to_string(i));
  }
  pinned.add(9);
  EXPECT_EQ(registry.counter("pinned").value(), 9u);
}

TEST(Registry, SnapshotAndReset) {
  telemetry::Registry registry;
  registry.counter("cells").add(2);
  registry.gauge("wall").observe(0.5);
  registry.histogram("front").observe(8);

  const telemetry::Snapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("cells"), 2u);
  EXPECT_EQ(snapshot.gauges.at("wall").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("front").count, 1u);

  registry.reset();
  const telemetry::Snapshot zeroed = registry.snapshot();
  EXPECT_EQ(zeroed.counters.at("cells"), 0u);
  EXPECT_EQ(zeroed.gauges.at("wall").count, 0u);
  EXPECT_EQ(zeroed.histograms.at("front").count, 0u);
}

/// A deterministic little family of per-cell snapshots for the merge-law
/// tests, exercising disjoint and overlapping instrument names.
telemetry::Snapshot cell_snapshot(std::uint64_t i) {
  telemetry::Registry registry;
  registry.counter("cells").add(1);
  registry.counter("evaluations").add(10 + i);
  if (i % 2 == 0) registry.counter("even.cells").add(1);
  registry.gauge("wall").observe(0.25 * static_cast<double>(i + 1));
  registry.gauge("s" + std::to_string(i % 3) + ".wall")
      .observe(static_cast<double>(i));
  registry.histogram("front").observe(i * 7 + 1);
  return registry.snapshot();
}

telemetry::Snapshot merge_all(const std::vector<telemetry::Snapshot>& cells) {
  telemetry::Snapshot out;
  for (const auto& cell : cells) out.merge(cell);
  return out;
}

TEST(Snapshot, MergeIsAssociative) {
  const auto a = cell_snapshot(0);
  const auto b = cell_snapshot(1);
  const auto c = cell_snapshot(2);

  telemetry::Snapshot left_first = a;
  left_first.merge(b);
  left_first.merge(c);

  telemetry::Snapshot right_first = b;
  right_first.merge(c);
  telemetry::Snapshot folded = a;
  folded.merge(right_first);

  EXPECT_EQ(left_first, folded);
}

TEST(Snapshot, ExactFieldsAreCommutative) {
  // Counters and histogram buckets are u64 sums — any merge order agrees.
  // Gauge sums add doubles, so full snapshot equality across orders is not
  // promised in general; compare the exact parts.
  const auto a = cell_snapshot(3);
  const auto b = cell_snapshot(4);
  telemetry::Snapshot ab = a;
  ab.merge(b);
  telemetry::Snapshot ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.counters, ba.counters);
  EXPECT_EQ(ab.histograms, ba.histograms);
  for (const auto& [name, gauge] : ab.gauges) {
    const auto& other = ba.gauges.at(name);
    EXPECT_EQ(gauge.count, other.count);
    EXPECT_DOUBLE_EQ(gauge.min, other.min);
    EXPECT_DOUBLE_EQ(gauge.max, other.max);
  }
}

TEST(Snapshot, GridOrderFoldIsGroupingIndependent) {
  // The byte-stability contract: every aggregation path folds per-cell
  // snapshots in grid order, whatever the intermediate grouping — one flat
  // fold, per-worker partial folds, per-shard partial folds — and lands on
  // the identical snapshot, gauge sums included.
  std::vector<telemetry::Snapshot> cells;
  for (std::uint64_t i = 0; i < 12; ++i) cells.push_back(cell_snapshot(i));
  const telemetry::Snapshot flat = merge_all(cells);

  for (const std::size_t group : {std::size_t{2}, std::size_t{3},
                                  std::size_t{5}}) {
    telemetry::Snapshot grouped;
    for (std::size_t begin = 0; begin < cells.size(); begin += group) {
      telemetry::Snapshot partial;
      for (std::size_t i = begin; i < cells.size() && i < begin + group; ++i) {
        partial.merge(cells[i]);
      }
      grouped.merge(partial);
    }
    EXPECT_EQ(grouped, flat) << "group size " << group;
  }
}

TEST(Snapshot, MergeWithEmptyIsIdentity) {
  const auto cell = cell_snapshot(5);
  telemetry::Snapshot left = cell;
  left.merge(telemetry::Snapshot{});
  EXPECT_EQ(left, cell);
  telemetry::Snapshot right;
  right.merge(cell);
  EXPECT_EQ(right, cell);
}

TEST(Codec, RoundTripsExactly) {
  telemetry::Registry registry;
  registry.counter("cells").add(7);
  registry.counter("sim.events").add(123456789012345ULL);
  registry.gauge("cell.wall_s").observe(0.1);  // 0.1 is inexact in binary64
  registry.gauge("cell.wall_s").observe(3.25);
  registry.gauge("scenario.d100.wall_s").observe(1e-9);
  registry.histogram("front.size").observe(0);
  registry.histogram("front.size").observe(97);
  const telemetry::Snapshot original = registry.snapshot();

  telemetry::Snapshot decoded;
  for (const std::string& line : telemetry::encode_snapshot(original)) {
    ASSERT_TRUE(telemetry::is_telemetry_line(line)) << line;
    telemetry::decode_snapshot_line(line, decoded);
  }
  EXPECT_EQ(decoded, original);
}

TEST(Codec, EncodedLineOrderIsDeterministic) {
  // Snapshot maps are name-ordered, so two registries with different
  // registration orders encode identical line sequences.
  telemetry::Registry forward;
  forward.counter("a").add(1);
  forward.counter("b").add(2);
  telemetry::Registry backward;
  backward.counter("b").add(2);
  backward.counter("a").add(1);
  EXPECT_EQ(telemetry::encode_snapshot(forward.snapshot()),
            telemetry::encode_snapshot(backward.snapshot()));
}

TEST(Codec, DecodeMergesOnNameCollision) {
  telemetry::Snapshot snapshot;
  telemetry::decode_snapshot_line("tcounter cells 3", snapshot);
  telemetry::decode_snapshot_line("tcounter cells 4", snapshot);
  EXPECT_EQ(snapshot.counters.at("cells"), 7u);
}

TEST(Codec, RejectsMalformedLines) {
  telemetry::Snapshot snapshot;
  EXPECT_FALSE(telemetry::is_telemetry_line("cell 0 1 2"));
  EXPECT_THROW(telemetry::decode_snapshot_line("tcounter", snapshot),
               std::invalid_argument);
  EXPECT_THROW(telemetry::decode_snapshot_line("tcounter cells", snapshot),
               std::invalid_argument);
  EXPECT_THROW(
      telemetry::decode_snapshot_line("tcounter cells notanumber", snapshot),
      std::invalid_argument);
  EXPECT_THROW(telemetry::decode_snapshot_line("tgauge wall 1 2.0", snapshot),
               std::invalid_argument);
  // Histogram whose bucket counts do not add up to its count.
  EXPECT_THROW(
      telemetry::decode_snapshot_line("thist front 5 1 3:2", snapshot),
      std::invalid_argument);
  EXPECT_THROW(telemetry::decode_snapshot_line("tunknown x 1", snapshot),
               std::invalid_argument);
}

TEST(ProgressMeter, FoldsCellsAndCounts) {
  // Route the feed to /dev/null: this test checks the fold, not the text.
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  {
    telemetry::ProgressMeter meter(3, 1, sink);
    std::vector<telemetry::Snapshot> cells;
    for (std::uint64_t i = 0; i < 3; ++i) {
      cells.push_back(cell_snapshot(i));
      meter.cell_done(cells.back());
    }
    EXPECT_EQ(meter.done(), 3u);
    EXPECT_EQ(meter.merged(), merge_all(cells));
  }
  std::fclose(sink);
}

TEST(ProgressMeter, PrintsEveryNthCellAndTheLast) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  {
    telemetry::ProgressMeter meter(5, 2, stream);
    for (std::uint64_t i = 0; i < 5; ++i) meter.cell_done(cell_snapshot(i));
  }
  std::rewind(stream);
  std::vector<std::string> lines;
  char buffer[512];
  while (std::fgets(buffer, sizeof buffer, stream) != nullptr) {
    lines.emplace_back(buffer);
  }
  std::fclose(stream);
  // Cells 2 and 4 are due by cadence; cell 5 is the final one.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines.front().find("2/5"), std::string::npos) << lines.front();
  EXPECT_NE(lines.back().find("5/5"), std::string::npos) << lines.back();
}

TEST(ProgressMeter, ReportsThroughputAndScenarioMeans) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  {
    telemetry::ProgressMeter meter(2, 1, stream);
    telemetry::Registry registry;
    registry.counter("evaluations").add(100);
    registry.gauge("scenario.d100.wall_s").observe(2.0);
    meter.cell_done(registry.snapshot());
    registry.reset();
    registry.counter("evaluations").add(100);
    registry.gauge("scenario.d100.wall_s").observe(4.0);
    meter.cell_done(registry.snapshot());
  }
  std::rewind(stream);
  std::string text;
  char buffer[512];
  while (std::fgets(buffer, sizeof buffer, stream) != nullptr) text += buffer;
  std::fclose(stream);
  EXPECT_NE(text.find("evals/s"), std::string::npos) << text;
  // Mean of the scenario.d100.wall_s gauge over both cells: (2 + 4) / 2.
  EXPECT_NE(text.find("d100 3.00 s/cell"), std::string::npos) << text;
}

}  // namespace
