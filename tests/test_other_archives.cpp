#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "moo/core/crowding_archive.hpp"
#include "moo/core/dominance.hpp"
#include "moo/core/unbounded_archive.hpp"

namespace aedbmls::moo {
namespace {

Solution make(std::vector<double> objectives, double violation = 0.0) {
  Solution s;
  s.objectives = std::move(objectives);
  s.constraint_violation = violation;
  s.evaluated = true;
  return s;
}

TEST(CrowdingArchive, BasicDominanceRules) {
  CrowdingArchive archive(10);
  EXPECT_TRUE(archive.try_insert(make({2.0, 2.0})));
  EXPECT_FALSE(archive.try_insert(make({3.0, 3.0})));
  EXPECT_TRUE(archive.try_insert(make({1.0, 1.0})));
  EXPECT_EQ(archive.size(), 1u);
}

TEST(CrowdingArchive, CapacityEnforcedByCrowding) {
  CrowdingArchive archive(5);
  // Even spread plus one cramped pair: the cramped one goes first.
  archive.try_insert(make({0.0, 1.0}));
  archive.try_insert(make({0.25, 0.75}));
  archive.try_insert(make({0.5, 0.5}));
  archive.try_insert(make({0.75, 0.25}));
  archive.try_insert(make({1.0, 0.0}));
  EXPECT_EQ(archive.size(), 5u);
  archive.try_insert(make({0.26, 0.74 - 1e-6}));
  EXPECT_EQ(archive.size(), 5u);
  // Extremes must survive crowding-based eviction.
  bool has_left = false;
  bool has_right = false;
  for (const Solution& s : archive.contents()) {
    if (s.objectives[0] == 0.0) has_left = true;
    if (s.objectives[0] == 1.0) has_right = true;
  }
  EXPECT_TRUE(has_left);
  EXPECT_TRUE(has_right);
}

TEST(CrowdingArchive, MembersMutuallyNonDominated) {
  CrowdingArchive archive(15);
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    archive.try_insert(make({rng.uniform(), rng.uniform()}));
  }
  for (const Solution& a : archive.contents()) {
    for (const Solution& b : archive.contents()) {
      if (&a != &b) { EXPECT_FALSE(dominates(a, b)); }
    }
  }
}

TEST(UnboundedArchive, KeepsEveryNonDominatedPoint) {
  UnboundedArchive archive;
  for (int i = 0; i <= 100; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    EXPECT_TRUE(archive.try_insert(make({x, 1.0 - x})));
  }
  EXPECT_EQ(archive.size(), 101u);
  EXPECT_EQ(archive.capacity(), 0u);
}

TEST(UnboundedArchive, DominatedPointsPruned) {
  UnboundedArchive archive;
  archive.try_insert(make({0.5, 0.5}));
  archive.try_insert(make({0.4, 0.6}));
  archive.try_insert(make({0.0, 0.0}));  // dominates everything
  EXPECT_EQ(archive.size(), 1u);
}

TEST(UnboundedArchive, RejectsDuplicatesAndDominated) {
  UnboundedArchive archive;
  EXPECT_TRUE(archive.try_insert(make({1.0, 1.0})));
  EXPECT_FALSE(archive.try_insert(make({1.0, 1.0})));
  EXPECT_FALSE(archive.try_insert(make({2.0, 1.0})));
}

}  // namespace
}  // namespace aedbmls::moo
