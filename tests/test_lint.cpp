// Drives the aedb-lint binary (tools/lint) against committed fixture
// trees and asserts exact diagnostics, exit codes, --only/--baseline
// semantics and suppression handling — then self-checks the real
// src/ bench/ tests/ tree, which must stay lint-clean.
//
// AEDB_LINT_BIN, AEDB_LINT_FIXTURES and AEDB_LINT_REPO_ROOT are injected
// by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;  // stdout only
  std::vector<std::string> lines;
};

RunResult run_lint(const std::string& arguments) {
  const std::string command =
      std::string(AEDB_LINT_BIN) + " " + arguments + " 2>/dev/null";
  std::FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  RunResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.out += buffer;
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::istringstream in(result.out);
  for (std::string line; std::getline(in, line);) {
    result.lines.push_back(line);
  }
  return result;
}

std::string fixture(const std::string& relative) {
  return std::string(AEDB_LINT_FIXTURES) + "/" + relative;
}

/// True when some output line contains `needle` (fixture paths are
/// printed absolute, so expectations pin path tails + messages).
bool has_line_with(const RunResult& result, const std::string& needle) {
  for (const std::string& line : result.lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

TEST(Lint, ListRulesNamesEveryRule) {
  const RunResult result = run_lint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"layer-deps", "determinism-hazards", "durable-io", "float-format",
        "header-hygiene", "lint-suppression"}) {
    EXPECT_TRUE(has_line_with(result, rule)) << rule << "\n" << result.out;
  }
}

TEST(Lint, FixtureTreeProducesExactDiagnostics) {
  const RunResult result = run_lint(fixture("tree"));
  EXPECT_EQ(result.exit_code, 1);
  // One entry per expected diagnostic: path tail, line, rule.
  const std::vector<std::string> expected = {
      "src/sim/bad_include.cpp:4: [layer-deps] include "
      "\"expt/experiment.hpp\" from layer 'sim' inverts the dependency "
      "order common -> par -> sim -> moo -> aedb -> core -> expt",
      "src/moo/bad_clock.cpp:5: [determinism-hazards] "
      "std::chrono::steady_clock outside common/clock — route timing "
      "through aedbmls::monotonic_ns()/ElapsedTimer so every wall-clock "
      "read stays auditable",
      "src/moo/bad_clock.cpp:6: [determinism-hazards] "
      "std::chrono::steady_clock outside common/clock — route timing "
      "through aedbmls::monotonic_ns()/ElapsedTimer so every wall-clock "
      "read stays auditable",
      "src/core/bad_unordered.cpp:9: [determinism-hazards] iteration over "
      "unordered container 'counts'",
      "src/core/bad_unordered.cpp:10: [determinism-hazards] iteration over "
      "unordered container 'counts'",
      "src/expt/bad_durable.cpp:7: [durable-io] std::ofstream outside "
      "common/durable_file",
      "src/common/telemetry.cpp:9: [float-format] float format '%f' in a "
      "codec file",
      "src/common/telemetry.cpp:10: [float-format] std::to_string on "
      "'value' (declared double/float) in a codec file",
      "src/aedb/bad_header.hpp:5: [header-hygiene] <iostream> in a header",
      "src/aedb/bad_header.hpp:7: [header-hygiene] 'using namespace' in a "
      "header",
  };
  EXPECT_EQ(result.lines.size(), expected.size()) << result.out;
  for (const std::string& entry : expected) {
    EXPECT_TRUE(has_line_with(result, entry)) << entry << "\n" << result.out;
  }
  // The clean fixture (banned identifiers in comments/strings/raw
  // strings, digit separators) must not appear at all.
  EXPECT_FALSE(has_line_with(result, "clean.cpp")) << result.out;
}

TEST(Lint, SingleCleanFileExitsZeroSilently) {
  const RunResult result = run_lint(fixture("tree/src/par/clean.cpp"));
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(Lint, JustifiedSuppressionSilencesTheFinding) {
  const RunResult result = run_lint(fixture("suppressed"));
  EXPECT_EQ(result.exit_code, 0) << result.out;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(Lint, BrokenSuppressionsAreThemselvesFindings) {
  const RunResult result = run_lint(fixture("broken"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.lines.size(), 4u) << result.out;
  // Missing justification: the suppression is rejected, so the raw
  // ofstream finding it tried to cover surfaces too.
  EXPECT_TRUE(has_line_with(
      result, "broken.cpp:8: [lint-suppression] suppression for "
              "'durable-io' is missing its justification"))
      << result.out;
  EXPECT_TRUE(has_line_with(result, "broken.cpp:9: [durable-io]"))
      << result.out;
  EXPECT_TRUE(has_line_with(
      result, "broken.cpp:13: [lint-suppression] suppression names unknown "
              "rule 'no-such-rule'"))
      << result.out;
  EXPECT_TRUE(has_line_with(
      result,
      "broken.cpp:16: [lint-suppression] suppression for 'float-format' "
      "never fired"))
      << result.out;
}

TEST(Lint, OnlyFiltersPrintedFindings) {
  const RunResult result =
      run_lint("--only=layer-deps " + fixture("tree"));
  EXPECT_EQ(result.exit_code, 1);
  ASSERT_EQ(result.lines.size(), 1u) << result.out;
  EXPECT_TRUE(has_line_with(result, "[layer-deps]")) << result.out;

  const RunResult clean =
      run_lint("--only=durable-io " + fixture("tree/src/moo/bad_clock.cpp"));
  EXPECT_EQ(clean.exit_code, 0) << clean.out;

  const RunResult bogus = run_lint("--only=no-such-rule " + fixture("tree"));
  EXPECT_EQ(bogus.exit_code, 2);
}

TEST(Lint, BaselineMasksExactDiagnosticStrings) {
  const RunResult before = run_lint(fixture("tree"));
  ASSERT_EQ(before.exit_code, 1);
  ASSERT_FALSE(before.lines.empty());

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string baseline_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/aedb_lint_baseline.txt";
  {
    std::ofstream baseline(baseline_path);
    ASSERT_TRUE(baseline.is_open());
    baseline << "# grandfathered findings (test baseline)\n\n";
    for (const std::string& line : before.lines) baseline << line << "\n";
  }

  // Full baseline: everything masked, exit 0.
  const RunResult masked =
      run_lint("--baseline=" + baseline_path + " " + fixture("tree"));
  EXPECT_EQ(masked.exit_code, 0) << masked.out;
  EXPECT_TRUE(masked.out.empty()) << masked.out;

  // Drop one entry: exactly that finding resurfaces.
  {
    std::ofstream baseline(baseline_path);
    for (std::size_t i = 1; i < before.lines.size(); ++i) {
      baseline << before.lines[i] << "\n";
    }
  }
  const RunResult partial =
      run_lint("--baseline=" + baseline_path + " " + fixture("tree"));
  EXPECT_EQ(partial.exit_code, 1);
  ASSERT_EQ(partial.lines.size(), 1u) << partial.out;
  EXPECT_EQ(partial.lines[0], before.lines[0]);

  const RunResult missing =
      run_lint("--baseline=/no/such/file " + fixture("tree"));
  EXPECT_EQ(missing.exit_code, 2);
  std::remove(baseline_path.c_str());
}

TEST(Lint, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint("").exit_code, 2);                    // no paths
  EXPECT_EQ(run_lint("--frobnicate src").exit_code, 2);    // unknown flag
  EXPECT_EQ(run_lint("/no/such/path").exit_code, 2);       // bad path
}

TEST(Lint, RealTreeIsLintClean) {
  const std::string root(AEDB_LINT_REPO_ROOT);
  const RunResult result =
      run_lint(root + "/src " + root + "/bench " + root + "/tests");
  EXPECT_EQ(result.exit_code, 0)
      << "the committed tree must lint clean:\n"
      << result.out;
  EXPECT_TRUE(result.out.empty()) << result.out;
}
