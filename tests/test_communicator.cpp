#include "par/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

namespace aedbmls::par {
namespace {

TEST(Communicator, PointToPointDelivery) {
  Communicator<int> world(2);
  std::thread rank1([&world] {
    const auto message = world.recv(1);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->first, 0u);   // source rank
    EXPECT_EQ(message->second, 42);  // payload
  });
  EXPECT_TRUE(world.send(0, 1, 42));
  rank1.join();
}

TEST(Communicator, TryRecvNonBlocking) {
  Communicator<int> world(2);
  EXPECT_FALSE(world.try_recv(1).has_value());
  world.send(0, 1, 5);
  const auto message = world.try_recv(1);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->second, 5);
}

TEST(Communicator, SelfSendAllowed) {
  Communicator<int> world(1);
  world.send(0, 0, 7);
  EXPECT_EQ(world.recv(0)->second, 7);
}

TEST(Communicator, MessagesFromManyRanksAllArrive) {
  constexpr std::size_t kRanks = 6;
  Communicator<std::size_t> world(kRanks);
  std::vector<std::thread> senders;
  for (std::size_t r = 1; r < kRanks; ++r) {
    senders.emplace_back([&world, r] {
      for (int i = 0; i < 50; ++i) world.send(r, 0, r);
    });
  }
  std::vector<std::size_t> counts(kRanks, 0);
  for (int i = 0; i < 50 * static_cast<int>(kRanks - 1); ++i) {
    const auto message = world.recv(0);
    ASSERT_TRUE(message.has_value());
    ++counts[message->second];
  }
  for (auto& sender : senders) sender.join();
  for (std::size_t r = 1; r < kRanks; ++r) EXPECT_EQ(counts[r], 50u);
}

TEST(Communicator, BarrierSynchronisesRanks) {
  constexpr std::size_t kRanks = 4;
  Communicator<int> world(kRanks);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> ranks;
  for (std::size_t r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&, r] {
      before.fetch_add(1);
      world.barrier();
      // Every rank must have incremented `before` by now.
      EXPECT_EQ(before.load(), static_cast<int>(kRanks));
      after.fetch_add(1);
      (void)r;
    });
  }
  for (auto& rank : ranks) rank.join();
  EXPECT_EQ(after.load(), static_cast<int>(kRanks));
}

TEST(Communicator, AllgatherCollectsContributions) {
  constexpr std::size_t kRanks = 4;
  Communicator<int> world(kRanks);
  std::vector<std::vector<int>> results(kRanks);
  std::vector<std::thread> ranks;
  for (std::size_t r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&, r] {
      results[r] = world.allgather(r, static_cast<int>(r * 10));
    });
  }
  for (auto& rank : ranks) rank.join();
  for (std::size_t r = 0; r < kRanks; ++r) {
    ASSERT_EQ(results[r].size(), kRanks);
    for (std::size_t k = 0; k < kRanks; ++k) {
      EXPECT_EQ(results[r][k], static_cast<int>(k * 10));
    }
  }
}

TEST(Communicator, LeaveDropsARankFromSubsequentCollectives) {
  constexpr std::size_t kRanks = 4;
  Communicator<int> world(kRanks);
  std::atomic<int> passed{0};
  std::thread quitter([&world] { world.leave(3); });
  std::vector<std::thread> survivors;
  for (std::size_t r = 0; r < kRanks - 1; ++r) {
    survivors.emplace_back([&, r] {
      world.barrier();  // completes without rank 3
      passed.fetch_add(1);
      (void)r;
    });
  }
  quitter.join();
  for (auto& rank : survivors) rank.join();
  EXPECT_EQ(passed.load(), static_cast<int>(kRanks - 1));
}

TEST(Communicator, ShutdownUnblocksReceivers) {
  Communicator<int> world(2);
  std::thread receiver([&world] {
    EXPECT_FALSE(world.recv(1).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  world.shutdown();
  receiver.join();
  EXPECT_FALSE(world.send(0, 1, 1));
}

}  // namespace
}  // namespace aedbmls::par
