#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "moo/core/dominance.hpp"
#include "moo/problems/synthetic.hpp"

namespace aedbmls::core {
namespace {

CellDeMlsHybrid::Config small_config() {
  CellDeMlsHybrid::Config config;
  config.cellde.grid_width = 5;
  config.cellde.grid_height = 5;
  config.cellde.max_evaluations = 1000;
  config.cellde.archive_capacity = 30;
  config.mls.populations = 2;
  config.mls.threads_per_population = 2;
  config.mls.evaluations_per_thread = 50;
  config.mls.reset_period = 10;
  config.mls.archive_capacity = 30;
  config.explore_fraction = 0.5;
  return config;
}

TEST(Hybrid, RunsBothPhasesAndMergesFronts) {
  const moo::MiniAedbLikeProblem problem;
  CellDeMlsHybrid hybrid(small_config());
  const moo::AlgorithmResult result = hybrid.run(problem, 1);
  ASSERT_FALSE(result.front.empty());
  // Evaluations include the reduced CellDE phase and the full MLS phase.
  EXPECT_GT(result.evaluations, 500u);
  for (const moo::Solution& a : result.front) {
    for (const moo::Solution& b : result.front) {
      if (&a != &b) { EXPECT_FALSE(moo::dominates(a, b)); }
    }
  }
}

TEST(Hybrid, NameIdentifiesBothPhases) {
  CellDeMlsHybrid hybrid(small_config());
  EXPECT_EQ(hybrid.name(), "CellDE+MLS");
}

TEST(Hybrid, FinalFrontNotWorseThanExplorationAlone) {
  const moo::MiniAedbLikeProblem problem;

  CellDeMlsHybrid::Config config = small_config();
  CellDeMlsHybrid hybrid(config);
  const moo::AlgorithmResult combined = hybrid.run(problem, 2);

  moo::CellDe explore_only(config.cellde);
  const moo::AlgorithmResult explore = explore_only.run(problem, 2);

  // The hybrid merged the exploration front, so nothing in it may be
  // dominated by an exploration-phase solution at the same seed.
  for (const moo::Solution& h : combined.front) {
    for (const moo::Solution& e : explore.front) {
      // e ran with the full budget; only a coarse sanity check is possible.
      (void)e;
    }
    EXPECT_TRUE(h.evaluated);
  }
  EXPECT_FALSE(combined.front.empty());
}

}  // namespace
}  // namespace aedbmls::core
