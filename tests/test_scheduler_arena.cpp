/// Arena/generation semantics of the allocation-free scheduler: recycled
/// slots must make stale `EventId`s harmless, cancelled callbacks must be
/// destroyed eagerly (no leaked captures), oversized callbacks must be
/// rejected at compile time, and slot storage must be recycled instead of
/// growing without bound.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/core/inline_function.hpp"
#include "sim/core/scheduler.hpp"

namespace aedbmls::sim {
namespace {

TEST(SchedulerArena, CancelAfterRecycleIsNoOp) {
  Scheduler scheduler;
  const EventId stale = scheduler.insert(seconds(1), [] {});
  EXPECT_TRUE(scheduler.cancel(stale));
  // The freed slot is recycled by the next insert; the stale id's
  // generation no longer matches, so cancelling it again must not disturb
  // the new occupant.
  bool ran = false;
  scheduler.insert(seconds(2), [&] { ran = true; });
  EXPECT_EQ(scheduler.arena_slots(), 1u);  // same slot, reused
  EXPECT_FALSE(scheduler.cancel(stale));
  EXPECT_EQ(scheduler.size(), 1u);
  scheduler.pop().callback();
  EXPECT_TRUE(ran);
}

TEST(SchedulerArena, CancelAfterExecuteIsNoOp) {
  Scheduler scheduler;
  const EventId id = scheduler.insert(seconds(1), [] {});
  scheduler.pop().callback();
  EXPECT_FALSE(scheduler.cancel(id));
}

TEST(SchedulerArena, StaleIdAcrossClearIsNoOp) {
  Scheduler scheduler;
  const EventId before = scheduler.insert(seconds(1), [] {});
  scheduler.clear();
  EXPECT_TRUE(scheduler.empty());
  EXPECT_FALSE(scheduler.cancel(before));
  // Even once the slot is re-occupied after the clear.
  scheduler.insert(seconds(1), [] {});
  EXPECT_FALSE(scheduler.cancel(before));
  EXPECT_EQ(scheduler.size(), 1u);
}

TEST(SchedulerArena, CancelDestroysCallbackEagerly) {
  Scheduler scheduler;
  auto token = std::make_shared<int>(42);
  const EventId id = scheduler.insert(seconds(1), [token] {});
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(scheduler.cancel(id));
  // Lazy-cancel schemes keep the entry (and its captures) alive until the
  // heap drains past it; the arena must release captures immediately.
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SchedulerArena, ClearDestroysAllPendingCallbacks) {
  Scheduler scheduler;
  auto token = std::make_shared<int>(7);
  for (int i = 0; i < 5; ++i) scheduler.insert(seconds(i), [token] {});
  EXPECT_EQ(token.use_count(), 6);
  scheduler.clear();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_TRUE(scheduler.empty());
}

TEST(SchedulerArena, SlotsAreRecycledAcrossChurn) {
  Scheduler scheduler;
  // High-water mark of concurrent events is 3; thousands of insert/pop
  // rounds must not grow the arena past it.
  for (int round = 0; round < 2000; ++round) {
    scheduler.insert(seconds(1), [] {});
    scheduler.insert(seconds(2), [] {});
    scheduler.insert(seconds(3), [] {});
    while (!scheduler.empty()) scheduler.pop().callback();
  }
  EXPECT_LE(scheduler.arena_slots(), 3u);
}

TEST(SchedulerArena, ClearRetainsArenaStorage) {
  Scheduler scheduler;
  for (int i = 0; i < 100; ++i) scheduler.insert(seconds(i), [] {});
  const std::size_t slots = scheduler.arena_slots();
  scheduler.clear();
  for (int i = 0; i < 100; ++i) scheduler.insert(seconds(i), [] {});
  EXPECT_EQ(scheduler.arena_slots(), slots);
}

TEST(SchedulerArena, InsertionOrderTiesSurviveClear) {
  Scheduler scheduler;
  scheduler.insert(seconds(1), [] {});
  scheduler.clear();
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    scheduler.insert(seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!scheduler.empty()) scheduler.pop().callback();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerArena, MoveOnlyCallbacksAreSupported) {
  Scheduler scheduler;
  auto payload = std::make_unique<int>(99);
  int seen = 0;
  scheduler.insert(seconds(1),
                   [p = std::move(payload), &seen] { seen = *p; });
  scheduler.pop().callback();
  EXPECT_EQ(seen, 99);
}

TEST(SchedulerArena, OversizedCallbacksRejectedAtCompileTime) {
  // `fits_v` is the compile-time gate the InlineFunction constructor
  // static_asserts on: anything over the inline buffer can never reach the
  // heap because it can never be constructed.
  const auto small = [] {};
  static_assert(InlineFunction::fits_v<decltype(small)>);

  std::array<char, InlineFunction::kCapacity + 1> big{};
  const auto oversized = [big] { (void)big; };
  static_assert(!InlineFunction::fits_v<decltype(oversized)>);

  // The largest real callback in the simulator (the channel's delivery
  // lambda) must keep fitting; this breaks if Frame grows past the buffer.
  struct DeliverySized {
    void* receiver;
    char frame[56];
    double rx_dbm;
    std::int64_t duration;
    void operator()() const {}
  };
  static_assert(InlineFunction::fits_v<DeliverySized>);
}

TEST(SchedulerArena, EmptyAndSizeTrackLiveEventsOnly) {
  Scheduler scheduler;
  const EventId a = scheduler.insert(seconds(1), [] {});
  const EventId b = scheduler.insert(seconds(2), [] {});
  scheduler.insert(seconds(3), [] {});
  EXPECT_EQ(scheduler.size(), 3u);
  scheduler.cancel(a);
  scheduler.cancel(b);
  EXPECT_EQ(scheduler.size(), 1u);
  EXPECT_EQ(scheduler.next_time(), seconds(3));
  scheduler.pop().callback();
  EXPECT_TRUE(scheduler.empty());
}

}  // namespace
}  // namespace aedbmls::sim
