/// AlgorithmRegistry round-trip: every registered name constructs through
/// its factory and completes a run at smoke scale on the real tuning
/// problem, unknown names fail with the registered list, and downstream
/// registrations can extend or shadow the builtins.

#include <gtest/gtest.h>

#include <stdexcept>

#include "aedb/tuning_problem.hpp"
#include "expt/algorithm_registry.hpp"
#include "expt/scale.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {
namespace {

Scale tiny_scale() {
  Scale scale;
  scale.networks = 1;
  scale.evals = 16;
  scale.mls_populations = 1;
  scale.mls_threads = 2;
  scale.seed = 77;
  return scale;
}

TEST(AlgorithmRegistry, BuiltinNamesAreRegistered) {
  auto& registry = AlgorithmRegistry::instance();
  for (const char* name :
       {"NSGAII", "CellDE", "AEDB-MLS", "AEDB-MLS-sym", "AEDB-MLS-unguided",
        "AEDB-MLS-pervar", "CellDE+MLS", "Random"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const AlgorithmRegistry::Entry* entry = registry.find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_FALSE(entry->description.empty()) << name;
  }
  for (const std::string& name : paper_algorithms()) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(AlgorithmRegistry, PaperAlgorithmListMatchesSectionSix) {
  EXPECT_EQ(paper_algorithms(),
            (std::vector<std::string>{"CellDE", "NSGAII", "AEDB-MLS"}));
}

TEST(AlgorithmRegistry, EveryRegisteredNameConstructsAndRuns) {
  const Scale scale = tiny_scale();
  const ScenarioSpec spec = ScenarioCatalog::instance().resolve("d100");
  const aedb::AedbTuningProblem problem(spec.problem_config(scale));
  for (const std::string& name : AlgorithmRegistry::instance().names()) {
    const auto algorithm =
        AlgorithmRegistry::instance().create(name, scale);
    ASSERT_NE(algorithm, nullptr) << name;
    const moo::AlgorithmResult result = algorithm->run(problem, scale.seed);
    EXPECT_GE(result.evaluations, 1u) << name;
    for (const moo::Solution& s : result.front) {
      EXPECT_TRUE(s.evaluated) << name;
      EXPECT_EQ(s.x.size(), 5u) << name;
      EXPECT_EQ(s.objectives.size(), 3u) << name;
    }
  }
}

TEST(AlgorithmRegistry, FactoryNamesMatchAlgorithmNames) {
  const Scale scale = tiny_scale();
  auto& registry = AlgorithmRegistry::instance();
  EXPECT_EQ(registry.create("NSGAII", scale)->name(), "NSGAII");
  EXPECT_EQ(registry.create("AEDB-MLS", scale)->name(), "AEDB-MLS");
}

TEST(AlgorithmRegistry, UnknownNameThrowsWithTheRegisteredList) {
  try {
    (void)AlgorithmRegistry::instance().create("SimulatedAnnealing",
                                               tiny_scale());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("SimulatedAnnealing"), std::string::npos);
    EXPECT_NE(message.find("AEDB-MLS"), std::string::npos);
    EXPECT_NE(message.find("NSGAII"), std::string::npos);
  }
}

TEST(AlgorithmRegistry, RegistrarAddsAndShadowsEntries) {
  auto& registry = AlgorithmRegistry::instance();
  const std::size_t before = registry.names().size();
  const AlgorithmRegistry::Registrar added{
      "test-only", "registered by the test suite",
      [](const Scale& scale, const moo::EvaluationEngine* evaluator) {
        return AlgorithmRegistry::instance().create("Random", scale,
                                                    evaluator);
      }};
  EXPECT_TRUE(registry.contains("test-only"));
  EXPECT_EQ(registry.names().size(), before + 1);
  // Last registration of a name wins (shadowing, not duplication).
  const AlgorithmRegistry::Registrar shadowed{
      "test-only", "shadowed",
      [](const Scale& scale, const moo::EvaluationEngine* evaluator) {
        return AlgorithmRegistry::instance().create("NSGAII", scale,
                                                    evaluator);
      }};
  EXPECT_EQ(registry.names().size(), before + 1);
  EXPECT_EQ(registry.find("test-only")->description, "shadowed");
  EXPECT_EQ(registry.create("test-only", tiny_scale())->name(), "NSGAII");
}

}  // namespace
}  // namespace aedbmls::expt
