#include "moo/algorithms/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/core/dominance.hpp"
#include "moo/core/nds.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/problems/synthetic.hpp"

namespace aedbmls::moo {
namespace {

Nsga2::Config small_config(std::size_t evaluations = 5000) {
  Nsga2::Config config;
  config.population_size = 40;
  config.max_evaluations = evaluations;
  return config;
}

TEST(Nsga2, ConvergesOnZdt1) {
  const Zdt1Problem problem(8);
  Nsga2 algorithm(small_config(8000));
  const AlgorithmResult result = algorithm.run(problem, 1);
  ASSERT_FALSE(result.front.empty());
  // The true front has HV ~ 2/3 under ref (1.01, 1.01) + boundary slack;
  // 8000 evaluations should reach at least 80% of it.
  const double hv = hypervolume(result.front, {1.01, 1.01});
  EXPECT_GT(hv, 0.55);
}

TEST(Nsga2, FrontIsMutuallyNonDominated) {
  const SchafferProblem problem;
  Nsga2 algorithm(small_config(2000));
  const AlgorithmResult result = algorithm.run(problem, 2);
  for (const Solution& a : result.front) {
    for (const Solution& b : result.front) {
      if (&a != &b) { EXPECT_FALSE(dominates(a, b)); }
    }
  }
}

TEST(Nsga2, RespectsEvaluationBudget) {
  const SchafferProblem problem;
  Nsga2 algorithm(small_config(1000));
  const AlgorithmResult result = algorithm.run(problem, 3);
  EXPECT_GE(result.evaluations, 1000u);
  EXPECT_LE(result.evaluations, 1000u + 40u);  // at most one extra generation
}

TEST(Nsga2, ConstrainedProblemYieldsFeasibleFront) {
  const BinhKornProblem problem;
  Nsga2 algorithm(small_config(4000));
  const AlgorithmResult result = algorithm.run(problem, 4);
  ASSERT_FALSE(result.front.empty());
  for (const Solution& s : result.front) EXPECT_TRUE(s.feasible());
}

TEST(Nsga2, DeterministicGivenSeed) {
  const SchafferProblem problem;
  Nsga2 a(small_config(1200));
  Nsga2 b(small_config(1200));
  const AlgorithmResult ra = a.run(problem, 77);
  const AlgorithmResult rb = b.run(problem, 77);
  ASSERT_EQ(ra.front.size(), rb.front.size());
  for (std::size_t i = 0; i < ra.front.size(); ++i) {
    EXPECT_EQ(ra.front[i].objectives, rb.front[i].objectives);
  }
}

TEST(Nsga2, DifferentSeedsExploreDifferently) {
  const Zdt1Problem problem(8);
  Nsga2 a(small_config(1200));
  const AlgorithmResult ra = a.run(problem, 1);
  const AlgorithmResult rb = a.run(problem, 2);
  bool identical = ra.front.size() == rb.front.size();
  if (identical) {
    for (std::size_t i = 0; i < ra.front.size(); ++i) {
      identical &= ra.front[i].objectives == rb.front[i].objectives;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Nsga2, ParallelEvaluatorMatchesBudget) {
  const Zdt1Problem problem(8);
  par::ThreadPool pool(2);
  const EvaluationEngine engine(&pool);
  Nsga2::Config config = small_config(2000);
  config.evaluator = &engine;
  Nsga2 algorithm(config);
  const AlgorithmResult result = algorithm.run(problem, 5);
  EXPECT_FALSE(result.front.empty());
  EXPECT_GE(result.evaluations, 2000u);
}

TEST(Nsga2, BeatsSparseRandomBaselineOnZdt1) {
  const Zdt1Problem problem(8);
  Nsga2 algorithm(small_config(4000));
  const AlgorithmResult evolved = algorithm.run(problem, 6);

  // Random sampling with the same budget.
  Xoshiro256 rng(6);
  std::vector<Solution> random_points(4000);
  for (Solution& s : random_points) {
    s.x = problem.random_point(rng);
    problem.evaluate_into(s);
  }
  const auto random_front = non_dominated_subset(random_points);
  const double hv_evolved = hypervolume(evolved.front, {1.01, 1.01});
  const double hv_random = hypervolume(random_front, {1.01, 1.01});
  EXPECT_GT(hv_evolved, hv_random);
}

}  // namespace
}  // namespace aedbmls::moo
