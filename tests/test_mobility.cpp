#include <gtest/gtest.h>

#include <cmath>

#include "sim/mobility/placement.hpp"
#include "sim/mobility/random_walk.hpp"
#include "sim/mobility/random_waypoint.hpp"

namespace aedbmls::sim {
namespace {

RandomWalkMobility::Config walk_config() {
  RandomWalkMobility::Config config;
  config.width = 500.0;
  config.height = 500.0;
  config.min_speed = 0.0;
  config.max_speed = 2.0;
  config.epoch = seconds(20);
  return config;
}

TEST(RandomWalk, StaysInsideArenaForLongHorizon) {
  const RandomWalkMobility walk(walk_config(), {250.0, 250.0}, CounterRng(1));
  for (int t = 0; t <= 4000; ++t) {  // 0..4000 s, past many epochs
    const Vec2 p = walk.position(seconds(t));
    EXPECT_GE(p.x, 0.0) << "t=" << t;
    EXPECT_LE(p.x, 500.0) << "t=" << t;
    EXPECT_GE(p.y, 0.0) << "t=" << t;
    EXPECT_LE(p.y, 500.0) << "t=" << t;
  }
}

TEST(RandomWalk, InitialPositionRespected) {
  const RandomWalkMobility walk(walk_config(), {10.0, 490.0}, CounterRng(2));
  const Vec2 p = walk.position(Time{});
  EXPECT_DOUBLE_EQ(p.x, 10.0);
  EXPECT_DOUBLE_EQ(p.y, 490.0);
}

TEST(RandomWalk, SpeedWithinConfiguredRange) {
  const RandomWalkMobility walk(walk_config(), {250.0, 250.0}, CounterRng(3));
  for (int t = 0; t < 500; t += 7) {
    const Vec2 v = walk.velocity(seconds(t));
    const double speed = v.norm();
    EXPECT_GE(speed, 0.0);
    EXPECT_LE(speed, 2.0 + 1e-9);
  }
}

TEST(RandomWalk, ConsistentWithSmallStepIntegration) {
  // Closed-form position must match explicit Euler integration of the
  // velocity (the velocity is piecewise constant up to reflections).
  const RandomWalkMobility walk(walk_config(), {100.0, 100.0}, CounterRng(4));
  Vec2 integrated = walk.position(Time{});
  const double dt = 0.01;
  for (int k = 0; k < 30000; ++k) {  // 300 s, crossing epochs and walls
    const Time t = seconds_d(k * dt);
    const Vec2 v = walk.velocity(t);
    integrated = integrated + v * dt;
  }
  const Vec2 closed = walk.position(seconds(300));
  EXPECT_NEAR(integrated.x, closed.x, 0.5);
  EXPECT_NEAR(integrated.y, closed.y, 0.5);
}

TEST(RandomWalk, DeterministicAcrossInstances) {
  const RandomWalkMobility a(walk_config(), {250.0, 250.0}, CounterRng(5));
  const RandomWalkMobility b(walk_config(), {250.0, 250.0}, CounterRng(5));
  for (int t = 0; t < 200; t += 13) {
    const Vec2 pa = a.position(seconds(t));
    const Vec2 pb = b.position(seconds(t));
    EXPECT_DOUBLE_EQ(pa.x, pb.x);
    EXPECT_DOUBLE_EQ(pa.y, pb.y);
  }
}

TEST(RandomWalk, DifferentStreamsDiverge) {
  const RandomWalkMobility a(walk_config(), {250.0, 250.0}, CounterRng(6));
  const RandomWalkMobility b(walk_config(), {250.0, 250.0}, CounterRng(7));
  const Vec2 pa = a.position(seconds(100));
  const Vec2 pb = b.position(seconds(100));
  EXPECT_FALSE(pa.x == pb.x && pa.y == pb.y);
}

TEST(RandomWalk, BackwardsQueryMatchesForwardQuery) {
  const RandomWalkMobility walk(walk_config(), {250.0, 250.0}, CounterRng(8));
  const Vec2 late = walk.position(seconds(100));
  const Vec2 early = walk.position(seconds(5));  // rewinds the cache
  const RandomWalkMobility fresh(walk_config(), {250.0, 250.0}, CounterRng(8));
  const Vec2 early_fresh = fresh.position(seconds(5));
  EXPECT_DOUBLE_EQ(early.x, early_fresh.x);
  EXPECT_DOUBLE_EQ(early.y, early_fresh.y);
  const Vec2 late_again = walk.position(seconds(100));
  EXPECT_DOUBLE_EQ(late.x, late_again.x);
  EXPECT_DOUBLE_EQ(late.y, late_again.y);
}

TEST(RandomWalk, VelocityChangesAcrossEpochs) {
  const RandomWalkMobility walk(walk_config(), {250.0, 250.0}, CounterRng(9));
  const Vec2 v0 = walk.velocity(seconds(1));
  const Vec2 v1 = walk.velocity(seconds(21));
  EXPECT_FALSE(v0.x == v1.x && v0.y == v1.y);
}

TEST(ConstantPosition, NeverMoves) {
  const ConstantPositionMobility still({42.0, 7.0});
  EXPECT_EQ(still.position(seconds(100)).x, 42.0);
  EXPECT_EQ(still.velocity(seconds(100)).x, 0.0);
}

TEST(RandomWaypoint, StaysInsideArena) {
  RandomWaypointMobility::Config config;
  const RandomWaypointMobility model(config, {250.0, 250.0}, CounterRng(10));
  for (int t = 0; t < 2000; t += 3) {
    const Vec2 p = model.position(seconds(t));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 500.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 500.0);
  }
}

TEST(RandomWaypoint, PausesAtWaypoints) {
  RandomWaypointMobility::Config config;
  config.pause = seconds(5);
  const RandomWaypointMobility model(config, {250.0, 250.0}, CounterRng(11));
  // Scan for a zero-velocity interval (a pause).
  bool paused = false;
  for (int t = 0; t < 2000 && !paused; ++t) {
    if (model.velocity(seconds(t)).norm() == 0.0) paused = true;
  }
  EXPECT_TRUE(paused);
}

TEST(Placement, UniformPositionsInsideAndDeterministic) {
  const auto a = uniform_positions(CounterRng(12), 100, 500.0, 400.0);
  const auto b = uniform_positions(CounterRng(12), 100, 500.0, 400.0);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LE(a[i].x, 500.0);
    EXPECT_GE(a[i].y, 0.0);
    EXPECT_LE(a[i].y, 400.0);
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
  }
}

TEST(Placement, GridCoversArea) {
  const auto g = grid_positions(9, 300.0, 300.0);
  ASSERT_EQ(g.size(), 9u);
  EXPECT_NEAR(g[0].x, 50.0, 1e-9);
  EXPECT_NEAR(g[4].x, 150.0, 1e-9);
  for (const Vec2& p : g) {
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 300.0);
  }
}

}  // namespace
}  // namespace aedbmls::sim
