#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace aedbmls {
namespace {

TEST(SplitMix, DeterministicSequence) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix, DifferentSeedsDiverge) {
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(7, 1), 2),
            hash_combine(hash_combine(7, 2), 1));
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 7.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Xoshiro, UniformMeanNearHalf) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro, UniformIntCoversAllValues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Xoshiro, UniformIntInclusiveRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Xoshiro, NormalMomentsRoughlyStandard) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(CounterRng, PureFunctionOfIndex) {
  const CounterRng stream(5, {1, 2});
  EXPECT_EQ(stream.bits(10), stream.bits(10));
  EXPECT_EQ(stream.uniform(3), stream.uniform(3));
}

TEST(CounterRng, IndependentOfQueryOrder) {
  const CounterRng stream(5, {1});
  const double later = stream.uniform(100);
  const double earlier = stream.uniform(1);
  const CounterRng stream2(5, {1});
  EXPECT_EQ(stream2.uniform(1), earlier);
  EXPECT_EQ(stream2.uniform(100), later);
}

TEST(CounterRng, ChildStreamsDiffer) {
  const CounterRng parent(5);
  const CounterRng a = parent.child(1);
  const CounterRng b = parent.child(2);
  int equal = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (a.bits(i) == b.bits(i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CounterRng, IdListChangesStream) {
  EXPECT_NE(CounterRng(5, {1, 2}).bits(0), CounterRng(5, {2, 1}).bits(0));
}

TEST(CounterRng, UniformWithinBounds) {
  const CounterRng stream(21);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = stream.uniform(i, 2.0, 4.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 4.0);
  }
}

TEST(CounterRng, EngineSeedsDeterministically) {
  const CounterRng stream(33);
  Xoshiro256 e1 = stream.engine(4);
  Xoshiro256 e2 = stream.engine(4);
  EXPECT_EQ(e1(), e2());
}

TEST(CounterRng, MeanNearHalf) {
  const CounterRng stream(77);
  double sum = 0.0;
  constexpr std::uint64_t kDraws = 100000;
  for (std::uint64_t i = 0; i < kDraws; ++i) sum += stream.uniform(i);
  EXPECT_NEAR(sum / static_cast<double>(kDraws), 0.5, 0.01);
}

}  // namespace
}  // namespace aedbmls
