#include "moo/sa/fast99.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aedbmls::moo {
namespace {

/// Ishigami function: the standard FAST validation target with known
/// analytic indices (a=7, b=0.1):
///   S1 ~ 0.3139, S2 ~ 0.4424, S3 = 0, ST3 ~ 0.244.
double ishigami(const std::vector<double>& x) {
  constexpr double a = 7.0;
  constexpr double b = 0.1;
  return std::sin(x[0]) + a * std::sin(x[1]) * std::sin(x[1]) +
         b * x[2] * x[2] * x[2] * x[2] * std::sin(x[0]);
}

std::vector<std::pair<double, double>> ishigami_domain() {
  return {{-M_PI, M_PI}, {-M_PI, M_PI}, {-M_PI, M_PI}};
}

TEST(Fast99, IshigamiFirstOrderIndices) {
  Fast99Config config;
  config.samples_per_curve = 1001;
  config.resamples = 2;
  config.seed = 4;
  const Fast99 fast(config);
  const Fast99Indices r = fast.analyze_scalar(ishigami_domain(), ishigami);
  ASSERT_EQ(r.first_order.size(), 3u);
  // Tolerances cover the known small-sample bias of the extended-FAST
  // estimator at Ns ~ 1000 (the R implementation shows similar spread).
  EXPECT_NEAR(r.first_order[0], 0.3139, 0.08);
  EXPECT_NEAR(r.first_order[1], 0.4424, 0.08);
  EXPECT_NEAR(r.first_order[2], 0.0, 0.03);
}

TEST(Fast99, IshigamiInteractionForX3) {
  Fast99Config config;
  config.samples_per_curve = 1001;
  config.resamples = 2;
  config.seed = 5;
  const Fast99 fast(config);
  const Fast99Indices r = fast.analyze_scalar(ishigami_domain(), ishigami);
  // x3 acts only through its interaction with x1 (ST3 ~ 0.24, S3 = 0).
  EXPECT_GT(r.interaction[2], 0.1);
  // x2 is purely additive: almost no interaction.
  EXPECT_LT(r.interaction[1], 0.1);
}

TEST(Fast99, LinearModelIndicesProportionalToSquaredWeights) {
  // y = 2*x0 + 1*x1 over [0,1]^2: V_i ~ w_i^2/12 => S0 = 4/5, S1 = 1/5.
  const auto model = [](const std::vector<double>& x) {
    return 2.0 * x[0] + x[1];
  };
  Fast99Config config;
  config.samples_per_curve = 513;
  const Fast99 fast(config);
  const Fast99Indices r = fast.analyze_scalar({{0.0, 1.0}, {0.0, 1.0}}, model);
  EXPECT_NEAR(r.first_order[0], 0.8, 0.05);
  EXPECT_NEAR(r.first_order[1], 0.2, 0.05);
  EXPECT_LT(r.interaction[0], 0.05);
}

TEST(Fast99, DirectionTracksMonotonicity) {
  const auto model = [](const std::vector<double>& x) {
    return 3.0 * x[0] - 2.0 * x[1];
  };
  Fast99Config config;
  config.samples_per_curve = 257;
  const Fast99 fast(config);
  const Fast99Indices r = fast.analyze_scalar({{0.0, 1.0}, {0.0, 1.0}}, model);
  EXPECT_GT(r.direction[0], 0.5);   // increasing
  EXPECT_LT(r.direction[1], -0.5);  // decreasing
}

TEST(Fast99, ConstantModelYieldsZeroIndices) {
  const auto model = [](const std::vector<double>&) { return 42.0; };
  Fast99Config config;
  config.samples_per_curve = 257;
  const Fast99 fast(config);
  const Fast99Indices r = fast.analyze_scalar({{0.0, 1.0}, {0.0, 1.0}}, model);
  EXPECT_DOUBLE_EQ(r.first_order[0], 0.0);
  EXPECT_DOUBLE_EQ(r.first_order[1], 0.0);
}

TEST(Fast99, MultiOutputAnalysesEachIndependently) {
  const Fast99::Model model = [](const std::vector<double>& x) {
    return std::vector<double>{x[0], x[1]};
  };
  Fast99Config config;
  config.samples_per_curve = 257;
  const Fast99 fast(config);
  const Fast99Result r = fast.analyze({{0.0, 1.0}, {0.0, 1.0}}, model, 2);
  ASSERT_EQ(r.outputs.size(), 2u);
  EXPECT_GT(r.outputs[0].first_order[0], 0.8);
  EXPECT_LT(r.outputs[0].first_order[1], 0.1);
  EXPECT_GT(r.outputs[1].first_order[1], 0.8);
  EXPECT_LT(r.outputs[1].first_order[0], 0.1);
}

TEST(Fast99, EvaluationCountIsCurvesTimesFactorsTimesSamples) {
  const Fast99::Model model = [](const std::vector<double>& x) {
    return std::vector<double>{x[0]};
  };
  Fast99Config config;
  config.samples_per_curve = 257;
  config.resamples = 2;
  const Fast99 fast(config);
  const Fast99Result r = fast.analyze({{0.0, 1.0}, {0.0, 1.0}}, model, 1);
  EXPECT_EQ(r.evaluations, 2u * 2u * 257u);
}

TEST(Fast99, DeterministicGivenSeed) {
  Fast99Config config;
  config.samples_per_curve = 257;
  config.seed = 11;
  const Fast99 fast(config);
  const auto a = fast.analyze_scalar(ishigami_domain(), ishigami);
  const auto b = fast.analyze_scalar(ishigami_domain(), ishigami);
  EXPECT_DOUBLE_EQ(a.first_order[0], b.first_order[0]);
  EXPECT_DOUBLE_EQ(a.total_effect[2], b.total_effect[2]);
}

TEST(Fast99, ParallelPoolMatchesSerial) {
  Fast99Config config;
  config.samples_per_curve = 257;
  config.seed = 12;
  const Fast99 fast(config);
  par::ThreadPool pool(2);
  const auto serial = fast.analyze_scalar(ishigami_domain(), ishigami);
  const auto parallel = fast.analyze_scalar(ishigami_domain(), ishigami, &pool);
  EXPECT_DOUBLE_EQ(serial.first_order[0], parallel.first_order[0]);
  EXPECT_DOUBLE_EQ(serial.total_effect[1], parallel.total_effect[1]);
}

}  // namespace
}  // namespace aedbmls::moo
