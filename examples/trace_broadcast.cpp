/// Trace one AEDB dissemination step by step: who received when, who
/// forwarded at what power, who dropped and why.  Useful for understanding
/// the protocol's border/density adaptation on a concrete topology.
///
///   ./trace_broadcast [--nodes=12] [--seed=5] [--border=-86] [--static]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "aedb/aedb_app.hpp"
#include "aedb/broadcast_stats.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/net/network.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);

  sim::NetworkConfig network_config;
  network_config.node_count = static_cast<std::size_t>(args.get_int("nodes", 12));
  network_config.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  network_config.static_nodes = args.has("static");
  // A compact arena so a dozen nodes form a connected multi-hop topology
  // (decode range is ~140 m at default power).
  network_config.area_width = args.get_double("area", 250.0);
  network_config.area_height = network_config.area_width;

  aedb::AedbParams params;
  params.min_delay_s = 0.05;
  params.max_delay_s = 0.5;
  params.border_threshold_dbm = args.get_double("border", -86.0);
  params.margin_threshold_db = 1.0;
  params.neighbors_threshold = 8.0;

  sim::Simulator simulator(network_config.seed);
  sim::Network network(simulator, network_config);
  aedb::BroadcastStatsCollector collector;

  const sim::Time beacon_start = sim::seconds(1);
  const sim::Time broadcast_at = sim::seconds(4);
  const sim::Time end_at = sim::seconds(10);

  std::vector<aedb::AedbApp*> apps;
  std::vector<double> forward_power(network.size(), 0.0);
  std::vector<double> forward_time(network.size(), -1.0);
  for (std::size_t i = 0; i < network.size(); ++i) {
    sim::Node& node = network.node(i);
    sim::BeaconApp::Config beacon_config;
    beacon_config.start_at = beacon_start;
    auto& beacons =
        node.add_app<sim::BeaconApp>(beacon_config, CounterRng(700 + i));
    aedb::AedbApp::Config app_config;
    app_config.params = params;
    apps.push_back(&node.add_app<aedb::AedbApp>(app_config, beacons, collector,
                                                CounterRng(800 + i)));
    const double duration_s =
        node.device().phy().frame_duration(app_config.data_bytes).seconds();
    node.device().set_sent_callback(
        [&, i, duration_s](const sim::Frame& frame, double tx_dbm) {
          if (frame.kind == sim::FrameKind::kData) {
            forward_power[i] = tx_dbm;
            forward_time[i] = simulator.now().seconds();
            collector.record_data_tx(static_cast<NodeId>(i), tx_dbm, duration_s);
          }
        });
  }

  const NodeId source = 0;
  simulator.schedule_at(broadcast_at, [&] {
    collector.begin(1, source, simulator.now(), network.size());
    apps[source]->originate(1);
  });
  simulator.run_until(end_at);

  std::printf("AEDB broadcast trace — %zu nodes, border %.1f dBm, source %u\n\n",
              network.size(), params.border_threshold_dbm, source);

  TextTable table;
  table.set_header({"node", "pos@t0 (x,y)", "first rx [s]", "decision",
                    "fwd tx [dBm]", "fwd at [s]"});
  for (std::size_t i = 0; i < network.size(); ++i) {
    const sim::Vec2 pos = network.node(i).position(broadcast_at);
    const auto first_rx = collector.first_rx_time(static_cast<NodeId>(i));
    std::string rx = "-";
    if (first_rx.has_value()) rx = format_double(first_rx->seconds(), 4);

    std::string decision;
    const auto& counters = apps[i]->counters();
    if (i == source) decision = "source";
    else if (counters.forwards > 0) {
      decision = counters.dense_mode_forwards > 0 ? "forward (dense)"
                                                  : "forward (sparse)";
    } else if (counters.drops_on_arrival > 0) decision = "drop: inside border";
    else if (counters.drops_after_wait > 0) decision = "drop: heard stronger";
    else if (!first_rx.has_value()) decision = "never reached";
    else decision = "waiting cut off";

    table.add_row({std::to_string(i),
                   "(" + format_double(pos.x, 0) + "," + format_double(pos.y, 0) + ")",
                   rx, decision,
                   forward_time[i] >= 0.0 ? format_double(forward_power[i], 2) : "-",
                   forward_time[i] >= 0.0 ? format_double(forward_time[i], 4) : "-"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const aedb::BroadcastStats stats = collector.finalize(0);
  std::printf("coverage %zu/%zu, forwardings %zu, energy %.2f dBm-sum, "
              "bt %.3f s\n",
              stats.coverage, stats.network_size - 1, stats.forwardings,
              stats.energy_dbm_sum, stats.broadcast_time_s);
  return 0;
}
