/// The optimiser is problem-agnostic: this example tunes nothing network-
/// related at all.  It defines a custom welded-beam-style constrained
/// problem inline, then runs AEDB-MLS and NSGA-II on it and on the bundled
/// DTLZ2 benchmark — the same `moo::Problem` interface the AEDB tuning
/// problem implements.

#include <cmath>
#include <cstdio>

#include "core/mls.hpp"
#include "moo/algorithms/nsga2.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/normalization.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/problems/synthetic.hpp"

namespace {

/// Two-bar truss design: minimise (volume, stress) subject to a stress cap.
/// Variables: cross-sections a1, a2 [cm^2] and joint height y [m].
class TwoBarTruss final : public aedbmls::moo::Problem {
 public:
  [[nodiscard]] std::size_t dimensions() const override { return 3; }
  [[nodiscard]] std::size_t objective_count() const override { return 2; }
  [[nodiscard]] std::pair<double, double> bounds(std::size_t dim) const override {
    switch (dim) {
      case 0: return {0.1, 2.0};   // a1
      case 1: return {0.1, 2.0};   // a2
      default: return {1.0, 3.0};  // y
    }
  }
  [[nodiscard]] Result evaluate(const std::vector<double>& x) const override {
    const double a1 = x[0];
    const double a2 = x[1];
    const double y = x[2];
    const double l1 = std::sqrt(16.0 + y * y);
    const double l2 = std::sqrt(1.0 + y * y);
    const double volume = a1 * l1 + a2 * l2;
    const double s1 = 20.0 * l1 / (y * a1);
    const double s2 = 80.0 * l2 / (y * a2);
    const double stress = std::max(s1, s2);
    const double violation = std::max(0.0, stress - 100.0);
    return {{volume, stress}, violation};
  }
  [[nodiscard]] std::string name() const override { return "TwoBarTruss"; }
};

void report(const char* title, const aedbmls::moo::AlgorithmResult& result) {
  std::printf("  %-10s %5zu evals, %3zu points, %.2f s\n", title,
              result.evaluations, result.front.size(), result.wall_seconds);
}

}  // namespace

int main() {
  using namespace aedbmls;

  std::printf("AEDB-MLS as a general multi-objective optimiser\n\n");

  // --- Custom constrained engineering problem ---
  const TwoBarTruss truss;
  core::MlsConfig mls_config;
  mls_config.populations = 2;
  mls_config.threads_per_population = 4;
  mls_config.evaluations_per_thread = 400;
  mls_config.reset_period = 50;
  // No sensitivity analysis for this problem: unguided all-variable steps.
  core::AedbMls mls(mls_config);
  const auto mls_result = mls.run(truss, 1);

  moo::Nsga2::Config nsga_config;
  nsga_config.population_size = 60;
  nsga_config.max_evaluations = 3200;
  moo::Nsga2 nsga2(nsga_config);
  const auto nsga_result = nsga2.run(truss, 1);

  std::printf("%s (constrained, 2 objectives):\n", truss.name().c_str());
  report("AEDB-MLS", mls_result);
  report("NSGA-II", nsga_result);

  const auto reference = moo::merge_fronts({mls_result.front, nsga_result.front});
  const auto bounds = moo::bounds_of(reference);
  const double hv_mls = moo::hypervolume(
      moo::normalize_front(mls_result.front, bounds), moo::unit_reference(2));
  const double hv_nsga = moo::hypervolume(
      moo::normalize_front(nsga_result.front, bounds), moo::unit_reference(2));
  std::printf("  normalised hypervolume: MLS %.4f vs NSGA-II %.4f\n\n", hv_mls,
              hv_nsga);

  // --- Bundled 3-objective benchmark ---
  const moo::Dtlz2Problem dtlz2(7);
  core::AedbMls mls2(mls_config);
  const auto dtlz_result = mls2.run(dtlz2, 2);
  std::printf("%s (3 objectives):\n", dtlz2.name().c_str());
  report("AEDB-MLS", dtlz_result);
  const double hv =
      moo::hypervolume(dtlz_result.front, {1.1, 1.1, 1.1});
  std::printf("  hypervolume vs (1.1)^3: %.4f (sphere-front optimum ~0.595)\n",
              hv);
  return 0;
}
