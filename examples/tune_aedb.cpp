/// Tune the AEDB protocol with AEDB-MLS on a chosen catalog scenario — the
/// paper's headline use case, scaled for a laptop by default.
///
///   ./tune_aedb [--scenario=d100] [--populations=2] [--threads=4]
///               [--evals=40] [--reset=20] [--alpha=0.2] [--networks=5]
///               [--seed=1]
///
/// `--scenario` accepts any ScenarioCatalog key (`--density=N` is shorthand
/// for dN).  Paper-scale run: --populations=8 --threads=12 --evals=250
/// --networks=10.

#include <cstdio>

#include "aedb/tuning_problem.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/mls.hpp"
#include "expt/scale.hpp"
#include "expt/scenario_catalog.hpp"
#include "moo/analysis/knee.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);

  const expt::ScenarioSpec spec = expt::scenario_from_cli_or_exit(args);
  expt::Scale scale;
  scale.networks = static_cast<std::size_t>(args.get_int("networks", 5));
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const aedb::AedbTuningProblem problem(spec.problem_config(scale));

  core::MlsConfig config;
  config.populations = static_cast<std::size_t>(args.get_int("populations", 2));
  config.threads_per_population =
      static_cast<std::size_t>(args.get_int("threads", 4));
  config.evaluations_per_thread =
      static_cast<std::size_t>(args.get_int("evals", 40));
  config.reset_period = static_cast<std::size_t>(args.get_int("reset", 20));
  config.alpha = args.get_double("alpha", 0.2);
  config.criteria = core::aedb_criteria();  // sensitivity-guided operators

  std::printf("AEDB-MLS tuning %s: %zu populations x %zu threads x %zu evals "
              "(alpha=%.2f, reset=%zu)\n",
              problem.name().c_str(), config.populations,
              config.threads_per_population, config.evaluations_per_thread,
              config.alpha, config.reset_period);

  core::AedbMls mls(config);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const moo::AlgorithmResult result = mls.run(problem, seed);

  std::printf("\n%zu evaluations in %.1f s (%.1f evals/s), %zu front points\n",
              result.evaluations, result.wall_seconds,
              static_cast<double>(result.evaluations) /
                  std::max(result.wall_seconds, 1e-9),
              result.front.size());
  const core::AedbMls::Stats& stats = mls.stats();
  std::printf("accepted moves: %llu, infeasible rejections: %llu, resets: %llu\n\n",
              static_cast<unsigned long long>(stats.accepted_moves),
              static_cast<unsigned long long>(stats.rejected_infeasible),
              static_cast<unsigned long long>(stats.resets));

  TextTable table;
  table.set_header({"energy_dBm", "coverage", "forwardings", "min_delay",
                    "max_delay", "border", "margin", "neighbors"});
  for (const moo::Solution& s : result.front) {
    const aedb::AedbParams params = aedb::AedbParams::from_vector(s.x);
    table.add_row({format_double(s.objectives[0], 2),
                   format_double(-s.objectives[1], 2),
                   format_double(s.objectives[2], 2),
                   format_double(params.min_delay_s, 3),
                   format_double(params.max_delay_s, 3),
                   format_double(params.border_threshold_dbm, 1),
                   format_double(params.margin_threshold_db, 2),
                   format_double(params.neighbors_threshold, 1)});
  }
  std::printf("%s", table.to_string().c_str());

  if (!result.front.empty()) {
    const std::size_t pick = moo::knee_point(result.front);
    const aedb::AedbParams best =
        aedb::AedbParams::from_vector(result.front[pick].x);
    std::printf("\nrecommended configuration (knee of the front):\n  %s\n"
                "  -> energy %.2f dBm-sum, coverage %.2f, forwardings %.2f\n",
                best.to_string().c_str(), result.front[pick].objectives[0],
                -result.front[pick].objectives[1],
                result.front[pick].objectives[2]);
  }
  return 0;
}
