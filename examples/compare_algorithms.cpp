/// Head-to-head of the three algorithms of the paper (plus random search as
/// a floor) on the AEDB tuning problem, with normalised quality indicators
/// against the combined reference front — §VI's comparison in miniature.
///
///   ./compare_algorithms [--density=100] [--evals=120] [--networks=3]
///                        [--seed=3]

#include <cstdio>
#include <memory>

#include "aedb/tuning_problem.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/mls.hpp"
#include "moo/algorithms/cellde.hpp"
#include "moo/algorithms/nsga2.hpp"
#include "moo/algorithms/random_search.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/normalization.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/indicators/igd.hpp"
#include "moo/indicators/spread.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  const auto evals = static_cast<std::size_t>(args.get_int("evals", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  aedb::AedbTuningProblem::Config problem_config;
  problem_config.devices_per_km2 = static_cast<int>(args.get_int("density", 100));
  problem_config.network_count =
      static_cast<std::size_t>(args.get_int("networks", 3));
  const aedb::AedbTuningProblem problem(problem_config);

  par::ThreadPool pool;  // parallel evaluation for the generational EAs
  const moo::EvaluationEngine engine(&pool);

  std::vector<std::unique_ptr<moo::Algorithm>> algorithms;
  {
    moo::Nsga2::Config config;
    config.population_size = 20;
    config.max_evaluations = evals;
    config.evaluator = &engine;
    algorithms.push_back(std::make_unique<moo::Nsga2>(config));
  }
  {
    moo::CellDe::Config config;
    config.grid_width = 5;
    config.grid_height = 4;
    config.max_evaluations = evals;
    config.evaluator = &engine;
    algorithms.push_back(std::make_unique<moo::CellDe>(config));
  }
  {
    core::MlsConfig config;
    config.populations = 2;
    config.threads_per_population = 2;
    config.evaluations_per_thread = evals / 4;
    config.reset_period = 15;
    config.criteria = core::aedb_criteria();
    algorithms.push_back(std::make_unique<core::AedbMls>(config));
  }
  {
    moo::RandomSearch::Config config;
    config.max_evaluations = evals;
    config.evaluator = &engine;
    algorithms.push_back(std::make_unique<moo::RandomSearch>(config));
  }

  std::printf("comparing on %s, ~%zu evaluations each\n\n",
              problem.name().c_str(), evals);
  std::vector<moo::AlgorithmResult> results;
  std::vector<std::vector<moo::Solution>> fronts;
  for (auto& algorithm : algorithms) {
    results.push_back(algorithm->run(problem, seed));
    fronts.push_back(results.back().front);
    std::printf("  %-12s %5zu evals  %6.1f s  %3zu front points\n",
                algorithm->name().c_str(), results.back().evaluations,
                results.back().wall_seconds, results.back().front.size());
  }

  // Normalise against the combined reference front, as the paper does.
  const auto reference = moo::merge_fronts(fronts);
  const moo::ObjectiveBounds bounds = moo::bounds_of(reference);
  const auto reference_norm = moo::normalize_front(reference, bounds);

  TextTable table;
  table.set_header({"algorithm", "hypervolume", "IGD(Eq.3)", "spread*"});
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    if (results[i].front.empty()) {
      table.add_row({algorithms[i]->name(), "-", "-", "-"});
      continue;
    }
    const auto front = moo::normalize_front(results[i].front, bounds);
    table.add_row({algorithms[i]->name(),
                   format_double(moo::hypervolume(front, moo::unit_reference(3)), 4),
                   format_double(moo::paper_igd(front, reference_norm), 4),
                   format_double(moo::generalized_spread(front, reference_norm), 4)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("(HV: higher better; IGD/spread: lower better; reference = "
              "merged best of all runs)\n");
  return 0;
}
