/// Head-to-head of the three algorithms of the paper (plus random search as
/// a floor) on one AEDB tuning scenario, with normalised quality indicators
/// against the combined reference front — §VI's comparison in miniature,
/// driven entirely through the `expt` layer (AlgorithmRegistry +
/// ScenarioCatalog).
///
///   ./compare_algorithms [--scenario=d100] [--evals=120] [--networks=3]
///                        [--seed=3] [--algorithms=NSGAII,CellDE,...]
///
/// Any catalog scenario works: --scenario=sparse-wide, highspeed,
/// static-grid, d250, ...  (--density=N is accepted as shorthand for dN.)

#include <cstdio>
#include <memory>

#include "aedb/tuning_problem.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "expt/algorithm_registry.hpp"
#include "expt/scale.hpp"
#include "expt/scenario_catalog.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/normalization.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/indicators/igd.hpp"
#include "moo/indicators/spread.hpp"
#include "par/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);

  expt::Scale scale;
  scale.evals = static_cast<std::size_t>(args.get_int("evals", 120));
  scale.networks = static_cast<std::size_t>(args.get_int("networks", 3));
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  scale.mls_populations = 2;
  scale.mls_threads = 2;

  const expt::ScenarioSpec spec = expt::scenario_from_cli_or_exit(args);
  std::vector<std::unique_ptr<moo::Algorithm>> algorithms;
  par::ThreadPool pool;  // parallel evaluation for the generational EAs
  const moo::EvaluationEngine engine(&pool);
  std::vector<std::string> names{"NSGAII", "CellDE", "AEDB-MLS", "Random"};
  if (args.has("algorithms")) {
    names = split_csv(args.get("algorithms"));
    if (names.empty()) {
      std::fprintf(stderr,
                   "error: --algorithms is empty; expected e.g. "
                   "--algorithms=NSGAII,CellDE\n");
      return 2;
    }
  }
  try {
    for (const std::string& name : names) {
      algorithms.push_back(
          expt::AlgorithmRegistry::instance().create(name, scale, &engine));
    }
  } catch (const std::exception& error) {
    // Unknown algorithm: the message lists the registered options.
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  const aedb::AedbTuningProblem problem(spec.problem_config(scale));

  std::printf("comparing on %s (%s), ~%zu evaluations each\n\n",
              problem.name().c_str(), spec.description.c_str(), scale.evals);
  std::vector<moo::AlgorithmResult> results;
  std::vector<std::vector<moo::Solution>> fronts;
  for (auto& algorithm : algorithms) {
    results.push_back(algorithm->run(problem, scale.seed));
    fronts.push_back(results.back().front);
    std::printf("  %-12s %5zu evals  %6.1f s  %3zu front points\n",
                algorithm->name().c_str(), results.back().evaluations,
                results.back().wall_seconds, results.back().front.size());
  }

  // Normalise against the combined reference front, as the paper does.
  const auto reference = moo::merge_fronts(fronts);
  const moo::ObjectiveBounds bounds = moo::bounds_of(reference);
  const auto reference_norm = moo::normalize_front(reference, bounds);

  TextTable table;
  table.set_header({"algorithm", "hypervolume", "IGD(Eq.3)", "spread*"});
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    if (results[i].front.empty()) {
      table.add_row({algorithms[i]->name(), "-", "-", "-"});
      continue;
    }
    const auto front = moo::normalize_front(results[i].front, bounds);
    table.add_row({algorithms[i]->name(),
                   format_double(moo::hypervolume(front, moo::unit_reference(3)), 4),
                   format_double(moo::paper_igd(front, reference_norm), 4),
                   format_double(moo::generalized_spread(front, reference_norm), 4)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("(HV: higher better; IGD/spread: lower better; reference = "
              "merged best of all runs)\n");
  return 0;
}
