/// Global sensitivity analysis of the AEDB parameters (§III-B): FAST99
/// first-order and interaction indices of the four outputs — the machinery
/// behind Figure 2 and Table I, runnable standalone.
///
///   ./sensitivity_analysis [--scenario=d100] [--samples=65] [--networks=2]
///                          [--seed=1]
///
/// `--scenario` accepts any ScenarioCatalog key (`--density=N` is shorthand
/// for dN).

#include <cstdio>

#include "aedb/tuning_problem.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "expt/scale.hpp"
#include "expt/scenario_catalog.hpp"
#include "moo/sa/fast99.hpp"
#include "par/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);

  const expt::ScenarioSpec spec = expt::scenario_from_cli_or_exit(args);
  expt::Scale scale;
  scale.networks = static_cast<std::size_t>(args.get_int("networks", 2));
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const aedb::AedbTuningProblem problem(spec.problem_config(scale));

  // The SA explores the wider §III-B domains, not the tuning domains.
  const auto& domain_array = aedb::AedbParams::sa_domain();
  const std::vector<std::pair<double, double>> domain(domain_array.begin(),
                                                      domain_array.end());

  moo::Fast99Config config;
  config.samples_per_curve =
      static_cast<std::size_t>(args.get_int("samples", 65));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const moo::Fast99 fast(config);

  // One simulation campaign yields all four outputs.
  const moo::Fast99::Model model = [&problem](const std::vector<double>& x) {
    const auto detail =
        problem.evaluate_detail(aedb::AedbParams::from_vector(x));
    return std::vector<double>{detail.mean_broadcast_time_s,
                               detail.mean_coverage, detail.mean_forwardings,
                               detail.mean_energy_dbm};
  };

  std::printf("FAST99 on %s (Ns=%zu per factor, %zu factors => %zu sims)\n\n",
              problem.name().c_str(), config.samples_per_curve, domain.size(),
              config.samples_per_curve * domain.size());
  par::ThreadPool pool;
  const moo::Fast99Result result = fast.analyze(domain, model, 4, &pool);

  const char* outputs[] = {"broadcast_time", "coverage", "forwardings",
                           "energy"};
  for (std::size_t out = 0; out < 4; ++out) {
    const moo::Fast99Indices& indices = result.outputs[out];
    TextTable table;
    table.set_header({"parameter", "main effect", "interactions", "direction"});
    for (std::size_t f = 0; f < domain.size(); ++f) {
      table.add_row({aedb::AedbParams::names()[f],
                     format_double(indices.first_order[f], 3),
                     format_double(indices.interaction[f], 3),
                     indices.direction[f] > 0.1
                         ? "increasing"
                         : (indices.direction[f] < -0.1 ? "decreasing"
                                                        : "flat")});
    }
    std::printf("influence on %s:\n%s\n", outputs[out],
                table.to_string().c_str());
  }
  std::printf("total model evaluations: %zu\n", result.evaluations);
  return 0;
}
