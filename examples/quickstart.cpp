/// Quickstart: simulate one AEDB broadcast on a catalog scenario and print
/// the four metrics of §III-A.
///
///   ./quickstart [--scenario=d100] [--seed=7] [--network=0]
///                [--border=-88] [--margin=1] [--neighbors=15]
///                [--min-delay=0.1] [--max-delay=0.8]
///
/// `--scenario` accepts any ScenarioCatalog key (d100/d200/d300,
/// static-grid, highspeed, sparse-wide, or d<N> for any density);
/// `--density=N` is shorthand for dN.

#include <cstdio>

#include "aedb/scenario.hpp"
#include "common/cli.hpp"
#include "expt/scenario_catalog.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);

  // A workload from the scenario catalog (Table II density d100 by default:
  // 500 m x 500 m, random-walk mobility at up to 2 m/s, beacons every
  // second, broadcast at t = 30 s).
  const expt::ScenarioSpec spec = expt::scenario_from_cli_or_exit(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto network = static_cast<std::uint64_t>(args.get_int("network", 0));
  const aedb::ScenarioConfig scenario = spec.scenario_config(seed, network);

  // An AEDB configuration (Table III domains).
  aedb::AedbParams params;
  params.min_delay_s = args.get_double("min-delay", 0.1);
  params.max_delay_s = args.get_double("max-delay", 0.8);
  params.border_threshold_dbm = args.get_double("border", -88.0);
  params.margin_threshold_db = args.get_double("margin", 1.0);
  params.neighbors_threshold = args.get_double("neighbors", 15.0);

  std::printf("AEDB quickstart — scenario %s: %s\n", spec.key.c_str(),
              spec.description.c_str());
  std::printf("%zu nodes, network %llu, seed %llu\n",
              scenario.network.node_count,
              static_cast<unsigned long long>(network),
              static_cast<unsigned long long>(seed));
  std::printf("configuration: %s\n\n", params.to_string().c_str());

  const aedb::ScenarioResult result = aedb::run_scenario(scenario, params);
  const aedb::BroadcastStats& stats = result.stats;

  std::printf("coverage        : %zu / %zu devices (%.1f%%)\n", stats.coverage,
              stats.network_size - 1, 100.0 * stats.coverage_fraction());
  std::printf("forwardings     : %zu\n", stats.forwardings);
  std::printf("energy (dBm sum): %.2f     [paper's energy metric]\n",
              stats.energy_dbm_sum);
  std::printf("energy (mJ)     : %.4f\n", stats.energy_mj);
  std::printf("broadcast time  : %.3f s   [constraint: < 2 s => %s]\n",
              stats.broadcast_time_s,
              stats.broadcast_time_s < 2.0 ? "feasible" : "INFEASIBLE");
  std::printf("collisions      : %llu, protocol drops: %zu, MAC drops: %llu\n",
              static_cast<unsigned long long>(stats.collisions),
              stats.drop_decisions,
              static_cast<unsigned long long>(stats.mac_drops));
  std::printf("simulator events: %llu\n",
              static_cast<unsigned long long>(result.events_executed));
  return 0;
}
