/// bench_fidelity_screening — the multi-fidelity racing claim, measured:
/// racing-mode MLS (screen speculative moves at the conservative tier,
/// promote survivors) must walk the *identical* candidate sequence as a
/// full-fidelity run — byte-identical admitted fronts, checked here per
/// seed — while getting through evaluations several times faster where
/// screens can prove infeasibility cheaply.
///
/// Two throughput views, both at equal final front:
///   * candidates/s — evaluation operations per wall-second (the race's
///     screens and promotions each count once; the full run's evaluations
///     likewise).  This is the engine-throughput claim: how much deciding
///     the same trajectory costs per second of wall time.
///   * wall speedup — wall(full)/wall(race) for the identical walk, per
///     seed and aggregated.  Rejection-dominated walks (no feasible basin
///     found: every candidate screen-rejected) post 4-6x; basin descents
///     pay a full evaluation per accepted move either way and sit near 1x.
///
/// The sweep spans regimes where screening barely pays (loose deadlines:
/// most moves are feasible and get promoted anyway) through the
/// deadline-tight preset, where the screen window covers the whole
/// ensemble rejection budget and one truncated network proves most
/// candidates infeasible on its own.
///
/// `--json=FILE` dumps per-regime and per-seed numbers (durably: atomic
/// tmp+rename with a #crc32 trailer) — BENCH_PR9.json in the repo root is
/// a committed run at the bench defaults.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/durable_file.hpp"
#include "common/table.hpp"
#include "core/mls.hpp"
#include "core/search_criteria.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"
#include "moo/core/evaluation_engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SeedRow {
  std::uint64_t seed = 0;
  double wall_full_s = 0.0;
  double wall_race_s = 0.0;
  std::uint64_t walked = 0;    ///< candidates decided (identical both modes)
  std::uint64_t ops_race = 0;  ///< screens + full evaluations in race mode
  std::uint64_t accepted = 0;
  bool front_identical = false;

  /// Per-seed evaluation-operation throughput ratio: each seed pair is a
  /// complete campaign at byte-equal final front, so this is the regime's
  /// honest distribution — rejection-dominated walks post several-fold
  /// ratios, basin descents sit near 1x.
  [[nodiscard]] double rate_ratio() const {
    return (static_cast<double>(ops_race) / wall_race_s) /
           (static_cast<double>(walked) / wall_full_s);
  }
};

struct RegimeTotals {
  std::uint64_t walked = 0;       ///< candidates decided (same both modes)
  std::uint64_t full_evals = 0;   ///< race mode's full-fidelity evaluations
  std::uint64_t screened = 0;
  std::uint64_t screen_rejected = 0;
  std::uint64_t promoted = 0;
  std::uint64_t accepted = 0;
  double wall_full_s = 0.0;
  double wall_race_s = 0.0;
  std::vector<SeedRow> per_seed;
};

bool fronts_identical(const std::vector<aedbmls::moo::Solution>& a,
                      const std::vector<aedbmls::moo::Solution>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].objectives != b[i].objectives || a[i].x != b[i].x ||
        a[i].constraint_violation != b[i].constraint_violation) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  expt::Scale scale = expt::resolve_scale_or_exit(args);
  // Default sweep: one regime per screening economics class — loose
  // deadlines (d100/d300), sparse multi-hop topologies, and the
  // deadline-tight preset the racing mode is built for.  An explicit
  // --scenarios/--densities flag still wins.
  if (!args.has("scenarios") && !args.has("scenario") &&
      !args.has("densities")) {
    scale.scenarios = {"d100", "d300", "sparse-wide", "deadline-tight"};
  }
  // Longer walks than the smoke default: the per-thread initialisation
  // evaluations can never be screened (best-of-retries compares exact
  // violations), so short walks understate the racing win.
  if (!args.has("evals")) scale.evals = 960;
  expt::print_header("bench_fidelity_screening",
                     "multi-fidelity racing: evaluations/s at equal front",
                     scale);

  const long seed_count = args.get_int("bench-seeds", 3);
  if (seed_count < 1) {
    std::fprintf(stderr, "--bench-seeds needs a positive count\n");
    return 2;
  }
  std::vector<std::uint64_t> seeds;
  for (long s = 1; s <= seed_count; ++s) {
    seeds.push_back(static_cast<std::uint64_t>(s));
  }

  core::MlsConfig base;
  base.populations = 1;
  base.threads_per_population = std::max<std::size_t>(1, scale.mls_threads);
  base.evaluations_per_thread =
      std::max<std::size_t>(2, scale.evals / base.threads_per_population);
  base.reset_period = base.evaluations_per_thread + 1;  // uninterrupted walk
  base.archive_capacity = 100;
  base.criteria = core::aedb_criteria();

  const moo::EvaluationEngine engine;  // pool-less: batches run inline

  TextTable table;
  table.set_header({"scenario", "walked", "full evals (race)", "screened",
                    "wall full [s]", "wall race [s]", "cand/s full",
                    "cand/s race", "cand/s ratio", "wall speedup"});

  std::ostringstream regimes_json;
  double best_ratio = 0.0;
  double best_ratio_wall_speedup = 0.0;
  std::string best_scenario;
  bool all_fronts_identical = true;

  for (const std::string& scenario : scale.scenarios) {
    const expt::ScenarioSpec spec =
        expt::ScenarioCatalog::instance().resolve(scenario);
    // Fresh problems per mode so neither run warms the other's caches;
    // the shared master seed means both see identical network ensembles.
    const aedb::AedbTuningProblem problem_full(spec.problem_config(scale));
    const aedb::AedbTuningProblem problem_race(spec.problem_config(scale));

    RegimeTotals totals;
    for (const std::uint64_t seed : seeds) {
      core::AedbMls full(base);
      const auto t_full = Clock::now();
      const moo::AlgorithmResult full_result = full.run(problem_full, seed);
      const double wall_full = seconds_since(t_full);

      core::MlsConfig race_config = base;
      race_config.screen_moves = true;
      race_config.evaluator = &engine;
      core::AedbMls race(race_config);
      const auto t_race = Clock::now();
      const moo::AlgorithmResult race_result = race.run(problem_race, seed);
      const double wall_race = seconds_since(t_race);

      const bool identical =
          fronts_identical(full_result.front, race_result.front);
      if (!identical) {
        all_fronts_identical = false;
        std::fprintf(stderr,
                     "FAIL: %s seed %llu: racing front differs from the "
                     "full-fidelity front (byte-identity contract broken)\n",
                     scenario.c_str(),
                     static_cast<unsigned long long>(seed));
      }
      // Both modes decide the same candidates; the race just proves most
      // rejections at the screen tier instead of paying a full simulation.
      totals.walked += full.stats().evaluations;
      totals.full_evals += race.stats().evaluations;
      totals.screened += race.stats().screened;
      totals.screen_rejected += race.stats().screen_rejected;
      totals.promoted += race.stats().promoted;
      totals.accepted += race.stats().accepted_moves;
      totals.wall_full_s += wall_full;
      totals.wall_race_s += wall_race;
      totals.per_seed.push_back(
          {seed, wall_full, wall_race, full.stats().evaluations,
           race.stats().screened + race.stats().evaluations,
           race.stats().accepted_moves, identical});
    }

    // Evaluation operations per wall-second: the full run performs one per
    // walked candidate; the race performs one screen per screened
    // candidate plus one full evaluation per promotion/initialisation.
    const double rate_full =
        static_cast<double>(totals.walked) / totals.wall_full_s;
    const double rate_race =
        static_cast<double>(totals.screened + totals.full_evals) /
        totals.wall_race_s;
    const double ratio = rate_race / rate_full;
    const double wall_speedup = totals.wall_full_s / totals.wall_race_s;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_ratio_wall_speedup = wall_speedup;
      best_scenario = scenario;
    }

    table.add_row({scenario, std::to_string(totals.walked),
                   std::to_string(totals.full_evals),
                   std::to_string(totals.screened),
                   format_double(totals.wall_full_s, 2),
                   format_double(totals.wall_race_s, 2),
                   format_double(rate_full, 1), format_double(rate_race, 1),
                   format_double(ratio, 2), format_double(wall_speedup, 2)});

    std::ostringstream seeds_json;
    for (const SeedRow& row : totals.per_seed) {
      char seed_buffer[320];
      std::snprintf(seed_buffer, sizeof(seed_buffer),
                    "%s{\"seed\": %llu, \"wall_s_full\": %.4f, "
                    "\"wall_s_race\": %.4f, \"wall_speedup\": %.3f, "
                    "\"candidates_per_s_ratio\": %.3f, "
                    "\"accepted\": %llu, \"front_identical\": %s}",
                    seeds_json.tellp() == 0 ? "" : ", ",
                    static_cast<unsigned long long>(row.seed),
                    row.wall_full_s, row.wall_race_s,
                    row.wall_full_s / row.wall_race_s, row.rate_ratio(),
                    static_cast<unsigned long long>(row.accepted),
                    row.front_identical ? "true" : "false");
      seeds_json << seed_buffer;
    }

    // The per-seed array is streamed separately: a fixed buffer sized for
    // the regime fields alone cannot silently truncate at high
    // --bench-seeds counts.
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "%s    {\"scenario\": \"%s\", \"walked\": %llu, "
        "\"full_evaluations_race\": %llu, \"screened\": %llu, "
        "\"screen_rejected\": %llu, \"promoted\": %llu, \"accepted\": %llu, "
        "\"screen_events\": %llu, \"full_events\": %llu, "
        "\"wall_s_full\": %.4f, \"wall_s_race\": %.4f, "
        "\"candidates_per_s_full\": %.2f, \"candidates_per_s_race\": %.2f, "
        "\"candidates_per_s_ratio\": %.3f, \"wall_speedup\": %.3f,\n"
        "     \"per_seed\": [",
        regimes_json.tellp() == 0 ? "" : ",\n", scenario.c_str(),
        static_cast<unsigned long long>(totals.walked),
        static_cast<unsigned long long>(totals.full_evals),
        static_cast<unsigned long long>(totals.screened),
        static_cast<unsigned long long>(totals.screen_rejected),
        static_cast<unsigned long long>(totals.promoted),
        static_cast<unsigned long long>(totals.accepted),
        static_cast<unsigned long long>(
            problem_race.tier_counters(1).events_executed),
        static_cast<unsigned long long>(
            problem_race.tier_counters(0).events_executed),
        totals.wall_full_s, totals.wall_race_s, rate_full, rate_race, ratio,
        wall_speedup);
    regimes_json << buffer << seeds_json.str() << "]}";
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("best regime: %s at %.2fx evaluations/s (%.2fx wall); fronts "
              "byte-identical across all regimes and seeds: %s\n",
              best_scenario.c_str(), best_ratio, best_ratio_wall_speedup,
              all_fronts_identical ? "yes" : "NO (FAIL)");

  if (args.has("json")) {
    std::ostringstream json;
    json << "{\n  \"bench\": \"bench_fidelity_screening\",\n"
         << "  \"scale\": \"" << scale.name << "\",\n"
         << "  \"networks\": " << scale.networks << ",\n"
         << "  \"threads\": " << base.threads_per_population << ",\n"
         << "  \"evaluations_per_thread\": " << base.evaluations_per_thread
         << ",\n  \"seeds\": " << seeds.size() << ",\n"
         << "  \"fronts_byte_identical\": "
         << (all_fronts_identical ? "true" : "false") << ",\n"
         << "  \"regimes\": [\n" << regimes_json.str() << "\n  ],\n"
         << "  \"headline\": {\"best_scenario\": \"" << best_scenario
         << "\", \"candidates_per_s_ratio\": "
         << format_double(best_ratio, 3)
         << ", \"wall_speedup\": " << format_double(best_ratio_wall_speedup, 3)
         << "}\n}\n";
    const std::string path = args.get("json");
    io::atomic_write_file_or_throw(path, io::with_crc_trailer(json.str()));
    std::printf("wrote %s\n", path.c_str());
  }
  return all_fronts_identical ? 0 : 2;
}
