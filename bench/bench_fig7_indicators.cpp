/// E5 — regenerates **Figure 7**: boxplots of spread, IGD (the paper's
/// Eq. 3) and hypervolume over repeated runs of CellDE, NSGA-II and
/// AEDB-MLS for each scenario, after normalising against the combined
/// reference front (the paper's protocol).
///
/// Output: ASCII boxplot panels mirroring Fig. 7's 3x3 grid, per-cell
/// medians/IQRs, and a CSV of all samples under results/.
///
/// Beyond the paper: sweep any catalog workload with e.g.
/// `--scenarios=sparse-wide,highspeed` or contenders with `--algorithms=`.

#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"
#include "moo/stats/boxplot.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_fig7_indicators",
                     "Figure 7 (indicator boxplots, 3 metrics x 3 densities)",
                     scale);
  const auto algorithms =
      expt::algorithms_or_exit(args, expt::paper_algorithms());

  expt::ExperimentDriver::Options options;
  options.use_cache = !args.has("no-cache");
  options.workers = static_cast<std::size_t>(std::max(0L, args.get_int("workers", 0)));
  // Honours --ranks / --shard=i/N / --merge=DIR for distributed campaigns
  // (EXPERIMENTS.md "Distributed campaigns").
  const auto samples =
      expt::run_campaign_or_exit(args, expt::ExperimentPlan::of(algorithms, scale),
                                 options)
          .samples;

  struct Panel {
    const char* title;
    double expt::IndicatorSample::* member;
    bool smaller_better;
  };
  const Panel panels[] = {
      {"Spread (lower = better distributed)", &expt::IndicatorSample::spread, true},
      {"IGD / Eq.3 (lower = closer to reference)", &expt::IndicatorSample::igd, true},
      {"Hypervolume (higher = better)", &expt::IndicatorSample::hypervolume, false},
  };

  TextTable csv;
  csv.set_header({"algorithm", "scenario", "indicator", "value"});

  for (const Panel& panel : panels) {
    std::printf("=== %s ===\n", panel.title);
    for (const std::string& scenario : scale.scenarios) {
      std::vector<moo::BoxplotSeries> series;
      for (const auto& algorithm : algorithms) {
        auto values = expt::extract(samples, algorithm, scenario, panel.member);
        if (values.empty()) continue;
        for (const double v : values) {
          csv.add_row({algorithm, scenario, panel.title, format_double(v, 6)});
        }
        series.push_back(moo::BoxplotSeries{algorithm, std::move(values)});
      }
      if (series.empty()) continue;
      std::printf("-- %s --\n%s\n", scenario.c_str(),
                  moo::render_boxplots(series, 56, 4).c_str());
    }
  }

  std::printf("paper expectations (Fig. 7 at full scale): AEDB-MLS is\n"
              "competitive on spread (beats NSGA-II at 200/300 dev), while\n"
              "both MOEAs beat it on IGD and hypervolume at every density.\n");

  write_text_file("results/fig7_indicators_" + scale.name + ".csv",
                  csv.to_csv());
  std::printf("[out] results/fig7_indicators_%s.csv\n", scale.name.c_str());
  return 0;
}
