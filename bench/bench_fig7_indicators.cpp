/// E5 — regenerates **Figure 7**: boxplots of spread, IGD (the paper's
/// Eq. 3) and hypervolume over repeated runs of CellDE, NSGA-II and
/// AEDB-MLS for each density, after normalising against the combined
/// reference front (the paper's protocol).
///
/// Output: ASCII boxplot panels mirroring Fig. 7's 3x3 grid, per-cell
/// medians/IQRs, and a CSV of all samples under results/.

#include <cstdio>

#include "common/table.hpp"
#include "experiment/runners.hpp"
#include "experiment/scale.hpp"
#include "moo/stats/boxplot.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale(args);
  expt::print_header("bench_fig7_indicators",
                     "Figure 7 (indicator boxplots, 3 metrics x 3 densities)",
                     scale);

  const auto samples = expt::collect_indicator_samples(
      expt::paper_algorithms(), scale, !args.has("no-cache"));

  struct Panel {
    const char* title;
    double expt::IndicatorSample::* member;
    bool smaller_better;
  };
  const Panel panels[] = {
      {"Spread (lower = better distributed)", &expt::IndicatorSample::spread, true},
      {"IGD / Eq.3 (lower = closer to reference)", &expt::IndicatorSample::igd, true},
      {"Hypervolume (higher = better)", &expt::IndicatorSample::hypervolume, false},
  };

  TextTable csv;
  csv.set_header({"algorithm", "density", "indicator", "value"});

  for (const Panel& panel : panels) {
    std::printf("=== %s ===\n", panel.title);
    for (const int density : scale.densities) {
      std::vector<moo::BoxplotSeries> series;
      for (const auto& algorithm : expt::paper_algorithms()) {
        auto values = expt::extract(samples, algorithm, density, panel.member);
        if (values.empty()) continue;
        for (const double v : values) {
          csv.add_row({algorithm, std::to_string(density), panel.title,
                       format_double(v, 6)});
        }
        series.push_back(moo::BoxplotSeries{algorithm, std::move(values)});
      }
      if (series.empty()) continue;
      std::printf("-- %d devices/km^2 --\n%s\n", density,
                  moo::render_boxplots(series, 56, 4).c_str());
    }
  }

  std::printf("paper expectations (Fig. 7 at full scale): AEDB-MLS is\n"
              "competitive on spread (beats NSGA-II at 200/300 dev), while\n"
              "both MOEAs beat it on IGD and hypervolume at every density.\n");

  write_text_file("results/fig7_indicators_" + scale.name + ".csv",
                  csv.to_csv());
  std::printf("[out] results/fig7_indicators_%s.csv\n", scale.name.c_str());
  return 0;
}
