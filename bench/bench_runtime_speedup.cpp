/// E7 — regenerates §VI's runtime comparison: AEDB-MLS needed 48/188/417
/// minutes per density where the serial MOEAs needed 32/123/264 hours —
/// >38x faster at 2.4x more evaluations, i.e. near-linear scaling over the
/// 96 workers (8 nodes x 12 cores).
///
/// On this machine we (a) measure the per-evaluation cost per density,
/// (b) run the serial EAs and the parallel MLS at matched smoke budgets and
/// report evaluations/second and the wall-clock ratio, and (c) project the
/// paper's full campaign (EAs 10000 evals serial, MLS 24000 evals parallel)
/// from the measured rates — the honest equivalent of the paper's minutes
/// table on different hardware (DESIGN.md substitution #3).

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/table.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_runtime_speedup",
                     "§VI wall-clock comparison (38x claim)", scale);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware: %u cores here vs the paper's 96 workers "
              "(8 nodes x 12 cores)\n\n",
              cores);

  struct PaperTimes {
    const char* scenario;
    double mls_minutes;
    double ea_hours;
  };
  const PaperTimes paper[] = {
      {"d100", 48, 32}, {"d200", 188, 123}, {"d300", 417, 264}};

  TextTable table;
  table.set_header({"scenario", "algo", "evals", "wall [s]", "evals/s",
                    "speedup vs serial EA", "parallel efficiency"});

  TextTable projection;
  projection.set_header({"scenario", "projected serial EA [h]",
                         "projected MLS here [min]", "paper EA [h]",
                         "paper MLS [min]"});

  for (const std::string& scenario : scale.scenarios) {
    const expt::ScenarioSpec spec =
        expt::ScenarioCatalog::instance().resolve(scenario);
    const aedb::AedbTuningProblem problem(spec.problem_config(scale));
    auto& registry = expt::AlgorithmRegistry::instance();

    // --- serial NSGA-II (the paper ran its MOEAs single-threaded) ---
    auto nsga2 = registry.create("NSGAII", scale, /*evaluator=*/nullptr);
    const auto t0 = std::chrono::steady_clock::now();
    const moo::AlgorithmResult ea = nsga2->run(problem, scale.seed);
    const double ea_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double ea_rate = static_cast<double>(ea.evaluations) / ea_seconds;

    // --- parallel AEDB-MLS, 2.4x the evaluations (the paper's ratio) ---
    expt::Scale mls_scale = scale;
    mls_scale.evals = static_cast<std::size_t>(
        static_cast<double>(scale.evals) * 2.4);
    auto mls = registry.create("AEDB-MLS", mls_scale);
    const auto t1 = std::chrono::steady_clock::now();
    const moo::AlgorithmResult mls_result = mls->run(problem, scale.seed);
    const double mls_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();
    const double mls_rate =
        static_cast<double>(mls_result.evaluations) / mls_seconds;

    // Wall-clock speedup at the paper's budget ratio: time(EA at its budget)
    // over time(MLS at 2.4x budget), both scaled linearly from measurement.
    const double speedup =
        (static_cast<double>(ea.evaluations) / ea_rate) /
        (static_cast<double>(ea.evaluations) * 2.4 / mls_rate);

    // Per-worker efficiency: rate gain over serial, divided by the usable
    // parallelism (workers capped by physical cores) — the paper's implied
    // ~95% at 96 workers is the comparable figure.
    const std::size_t workers = std::min<std::size_t>(
        scale.mls_populations * scale.mls_threads, cores);
    const double efficiency =
        mls_rate / (ea_rate * static_cast<double>(workers));

    table.add_row({scenario, "NSGAII(serial)",
                   std::to_string(ea.evaluations), format_double(ea_seconds, 1),
                   format_double(ea_rate, 1), "1.0", "-"});
    table.add_row({scenario, "AEDB-MLS",
                   std::to_string(mls_result.evaluations),
                   format_double(mls_seconds, 1), format_double(mls_rate, 1),
                   format_double(speedup, 2), format_double(efficiency, 2)});

    // Projection of the full campaign on this machine.
    for (const PaperTimes& p : paper) {
      if (scenario != p.scenario) continue;
      const double projected_ea_h = 10000.0 / ea_rate / 3600.0;
      const double projected_mls_min = 24000.0 / mls_rate / 60.0;
      projection.add_row({scenario,
                          format_double(projected_ea_h, 2),
                          format_double(projected_mls_min, 1),
                          format_double(p.ea_hours, 0),
                          format_double(p.mls_minutes, 0)});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n", projection.to_string().c_str());
  std::printf("interpretation: the paper's 38x combines ~96-way parallelism\n"
              "with the 2.4x evaluation ratio (38 * 2.4 ~ 91 ~ 96 workers at\n"
              "~95%% efficiency).  With %u cores the ceiling here is ~%.1fx;\n"
              "the measured per-worker efficiency is the portable claim.\n",
              cores, static_cast<double>(cores) / 2.4);
  return 0;
}
