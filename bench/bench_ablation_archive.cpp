/// E10 — ablation of the §IV-A archiving choice: AGA versus a
/// crowding-distance archive versus an unbounded archive, fed the identical
/// stream of candidate solutions (recorded from real optimiser runs on the
/// AEDB problem plus a uniform-random stream), then scored on the quality
/// of what each retained: hypervolume, spread, size and insert cost.

#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"
#include "moo/core/aga_archive.hpp"
#include "moo/core/crowding_archive.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/nds.hpp"
#include "moo/core/normalization.hpp"
#include "moo/core/unbounded_archive.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/indicators/spread.hpp"

namespace {

using namespace aedbmls;

struct ArchiveScore {
  std::string name;
  std::size_t size = 0;
  double hv = 0.0;
  double spread = 0.0;
  double insert_us = 0.0;
};

ArchiveScore feed(moo::Archive& archive, const std::string& name,
                  const std::vector<moo::Solution>& stream,
                  const moo::ObjectiveBounds& bounds,
                  const std::vector<moo::Solution>& reference_norm) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const moo::Solution& s : stream) archive.try_insert(s);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ArchiveScore score;
  score.name = name;
  score.size = archive.size();
  if (!archive.contents().empty()) {
    const auto front = moo::normalize_front(archive.contents(), bounds);
    score.hv = moo::hypervolume(front, moo::unit_reference(3));
    score.spread = moo::generalized_spread(front, reference_norm);
  }
  score.insert_us = seconds * 1e6 / static_cast<double>(stream.size());
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_ablation_archive",
                     "ablation: AGA vs crowding vs unbounded archiving (§IV-A)",
                     scale);

  const std::string& scenario = scale.scenarios.front();
  const expt::ScenarioSpec spec =
      expt::ScenarioCatalog::instance().resolve(scenario);
  const aedb::AedbTuningProblem problem(spec.problem_config(scale));

  // Candidate stream: every solution an unguided MLS run evaluates and
  // accepts would offer its archive, approximated here by merging the
  // fronts of several short runs plus uniform random evaluations — dense in
  // the interesting region, with plenty of dominated chaff.
  std::printf("[run] recording candidate stream on %s...\n",
              problem.name().c_str());
  std::vector<moo::Solution> stream;
  {
    expt::Scale mini = scale;
    mini.runs = std::max<std::size_t>(2, scale.runs / 2);
    for (const auto& record :
         expt::run_repeats("AEDB-MLS-unguided", scenario, mini)) {
      stream.insert(stream.end(), record.front.begin(), record.front.end());
    }
    Xoshiro256 rng(scale.seed);
    for (std::size_t i = 0; i < scale.evals; ++i) {
      moo::Solution s;
      s.x = problem.random_point(rng);
      problem.evaluate_into(s);
      stream.push_back(std::move(s));
    }
    // Shuffle so no archive sees a conveniently sorted prefix.
    for (std::size_t i = stream.size(); i > 1; --i) {
      std::swap(stream[i - 1], stream[rng.uniform_int(i)]);
    }
  }
  std::printf("stream: %zu candidates\n\n", stream.size());

  const auto reference = moo::non_dominated_subset(stream);
  const moo::ObjectiveBounds bounds = moo::bounds_of(reference);
  const auto reference_norm = moo::normalize_front(reference, bounds);

  // Capacity below the stream's non-dominated count so the eviction
  // policies are actually exercised at smoke scale.
  const std::size_t cap =
      std::max<std::size_t>(6, moo::non_dominated_subset(stream).size() / 2);
  moo::AgaArchive aga(cap);
  moo::CrowdingArchive crowding(cap);
  moo::UnboundedArchive unbounded;
  const ArchiveScore scores[] = {
      feed(aga, "AGA (paper)", stream, bounds, reference_norm),
      feed(crowding, "Crowding", stream, bounds, reference_norm),
      feed(unbounded, "Unbounded", stream, bounds, reference_norm),
  };

  TextTable table;
  table.set_header({"archive", "size", "hypervolume", "spread*",
                    "us/insert"});
  for (const ArchiveScore& score : scores) {
    table.add_row({score.name, std::to_string(score.size),
                   format_double(score.hv, 4), format_double(score.spread, 4),
                   format_double(score.insert_us, 2)});
  }
  std::printf("AEDB stream (bounded caps = %zu):\n%s\n", cap,
              table.to_string().c_str());

  // Second panel: a dense synthetic stream (noisy simplex, thousands of
  // mutually non-dominated points) where capacity pressure is extreme.
  {
    Xoshiro256 rng(scale.seed + 1);
    std::vector<moo::Solution> dense;
    for (int i = 0; i < 5000; ++i) {
      moo::Solution s;
      const double a = rng.uniform();
      const double b = rng.uniform() * (1.0 - a);
      s.objectives = {a, b, 1.0 - a - b + 0.02 * rng.uniform()};
      s.x = {0.0};
      s.evaluated = true;
      dense.push_back(std::move(s));
    }
    const auto dense_reference = moo::non_dominated_subset(dense);
    const moo::ObjectiveBounds dense_bounds = moo::bounds_of(dense_reference);
    const auto dense_reference_norm =
        moo::normalize_front(dense_reference, dense_bounds);

    moo::AgaArchive aga2(100);
    moo::CrowdingArchive crowding2(100);
    moo::UnboundedArchive unbounded2;
    const ArchiveScore dense_scores[] = {
        feed(aga2, "AGA (paper, cap 100)", dense, dense_bounds,
             dense_reference_norm),
        feed(crowding2, "Crowding (cap 100)", dense, dense_bounds,
             dense_reference_norm),
        feed(unbounded2, "Unbounded", dense, dense_bounds,
             dense_reference_norm),
    };
    TextTable dense_table;
    dense_table.set_header({"archive", "size", "hypervolume", "spread*",
                            "us/insert"});
    for (const ArchiveScore& score : dense_scores) {
      dense_table.add_row({score.name, std::to_string(score.size),
                           format_double(score.hv, 4),
                           format_double(score.spread, 4),
                           format_double(score.insert_us, 2)});
    }
    std::printf("synthetic dense stream (5000 near-simplex points):\n%s\n",
                dense_table.to_string().c_str());
  }

  std::printf("reading: the unbounded archive is the hv ceiling (it keeps\n"
              "everything non-dominated) but its cost/size grow without\n"
              "bound; AGA should match crowding on hv while spreading its\n"
              "members evenly and protecting extremes — the §IV-A properties\n"
              "— at a comparable per-insert cost.\n");
  return 0;
}
