/// E8 — regenerates the paper's §V configuration analysis: the 3x3 grid of
/// BLX-α alpha ∈ {0.1, 0.2, 0.3} x reset period ∈ {15, 25, 50} on the
/// sparsest network (100 devices/km²), scored by normalised hypervolume.
/// The paper selected (alpha = 0.2, reset = 50).

#include <cstdio>

#include "common/table.hpp"
#include "core/mls.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/normalization.hpp"
#include "moo/indicators/hypervolume.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_ablation_config",
                     "§V parameter study: alpha x reset grid (best = 0.2/50)",
                     scale);

  const double alphas[] = {0.1, 0.2, 0.3};
  const std::size_t resets[] = {15, 25, 50};
  // The paper tuned on the least dense Table II instance.
  const expt::ScenarioSpec spec =
      expt::ScenarioCatalog::instance().resolve("d100");
  const aedb::AedbTuningProblem problem(spec.problem_config(scale));

  // Run every cell `repeats` times; score = mean normalised hypervolume
  // against the union reference of all cells.
  const std::size_t repeats = std::max<std::size_t>(2, scale.runs / 2);
  struct Cell {
    std::vector<std::vector<moo::Solution>> fronts;
  };
  Cell cells[3][3];
  std::vector<std::vector<moo::Solution>> all_fronts;

  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        core::MlsConfig config;
        config.populations = scale.mls_populations;
        config.threads_per_population = scale.mls_threads;
        config.evaluations_per_thread = scale.mls_evals_per_thread();
        config.extra_evaluation_workers = scale.mls_extra_evaluation_workers();
        config.alpha = alphas[a];
        config.reset_period = resets[r];
        config.criteria = core::aedb_criteria();
        core::AedbMls mls(config);
        const auto result = mls.run(
            problem, hash_combine(scale.seed, (a * 3 + r) * 100 + rep));
        cells[a][r].fronts.push_back(result.front);
        all_fronts.push_back(result.front);
      }
      std::printf("[run] alpha=%.1f reset=%zu done (%zu repeats)\n", alphas[a],
                  resets[r], repeats);
      std::fflush(stdout);
    }
  }

  const auto reference = moo::merge_fronts(all_fronts);
  const moo::ObjectiveBounds bounds = moo::bounds_of(reference);

  TextTable table;
  table.set_header({"alpha \\ reset", "15", "25", "50"});
  double best_hv = -1.0;
  std::size_t best_a = 0;
  std::size_t best_r = 0;
  for (std::size_t a = 0; a < 3; ++a) {
    std::vector<std::string> row{format_double(alphas[a], 1)};
    for (std::size_t r = 0; r < 3; ++r) {
      double mean_hv = 0.0;
      for (const auto& front : cells[a][r].fronts) {
        if (front.empty()) continue;
        mean_hv += moo::hypervolume(moo::normalize_front(front, bounds),
                                    moo::unit_reference(3));
      }
      mean_hv /= static_cast<double>(cells[a][r].fronts.size());
      if (mean_hv > best_hv) {
        best_hv = mean_hv;
        best_a = a;
        best_r = r;
      }
      row.push_back(format_double(mean_hv, 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("\nmean normalised hypervolume over %zu repeats "
              "(100 devices/km^2):\n%s\n",
              repeats, table.to_string().c_str());
  std::printf("best cell here: alpha=%.1f, reset=%zu (hv %.4f); the paper "
              "selected alpha=0.2, reset=50.\n",
              alphas[best_a], resets[best_r], best_hv);
  return 0;
}
