/// E11b — google-benchmark micro-benchmarks of the optimiser substrate:
/// archive insertion (AGA vs crowding), non-dominated sorting, exact 3-D
/// hypervolume, the Eq.-2 BLX step, Wilcoxon, and the parallel primitives
/// (mailbox round trip, shared-population access, archive-actor insert).

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/archive_actor.hpp"
#include "core/shared_population.hpp"
#include "moo/core/aga_archive.hpp"
#include "moo/core/crowding_archive.hpp"
#include "moo/core/nds.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/operators/blx_alpha.hpp"
#include "moo/stats/wilcoxon.hpp"
#include "par/mailbox.hpp"

namespace {

using namespace aedbmls;

moo::Solution random_solution(Xoshiro256& rng, std::size_t objectives = 3) {
  moo::Solution s;
  s.x = {rng.uniform(), rng.uniform()};
  s.objectives.resize(objectives);
  for (double& f : s.objectives) f = rng.uniform();
  s.evaluated = true;
  return s;
}

void BM_AgaArchiveInsert(benchmark::State& state) {
  Xoshiro256 rng(1);
  moo::AgaArchive archive(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(archive.try_insert(random_solution(rng)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AgaArchiveInsert);

void BM_CrowdingArchiveInsert(benchmark::State& state) {
  Xoshiro256 rng(1);
  moo::CrowdingArchive archive(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(archive.try_insert(random_solution(rng)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CrowdingArchiveInsert);

void BM_FastNonDominatedSort(benchmark::State& state) {
  Xoshiro256 rng(2);
  std::vector<moo::Solution> population;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    population.push_back(random_solution(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(moo::fast_non_dominated_sort(population));
  }
}
BENCHMARK(BM_FastNonDominatedSort)->Arg(100)->Arg(200);

void BM_Hypervolume3d(benchmark::State& state) {
  Xoshiro256 rng(3);
  std::vector<std::vector<double>> points;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    // Near-simplex points: mostly mutually non-dominated (worst case).
    const double a = rng.uniform();
    const double b = rng.uniform() * (1.0 - a);
    points.push_back({a, b, 1.0 - a - b});
  }
  const std::vector<double> reference{1.1, 1.1, 1.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(moo::hypervolume(points, reference));
  }
}
BENCHMARK(BM_Hypervolume3d)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_PaperBlxStep(benchmark::State& state) {
  Xoshiro256 rng(4);
  double value = 0.5;
  for (auto _ : state) {
    value = moo::paper_blx_step(value, 0.7, 0.2, rng);
    if (value < 0.0 || value > 1.0) value = 0.5;
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_PaperBlxStep);

void BM_WilcoxonRankSum(benchmark::State& state) {
  Xoshiro256 rng(5);
  std::vector<double> a(30);
  std::vector<double> b(30);
  for (double& v : a) v = rng.normal();
  for (double& v : b) v = rng.normal() + 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(moo::wilcoxon_rank_sum(a, b));
  }
}
BENCHMARK(BM_WilcoxonRankSum);

void BM_MailboxRoundTrip(benchmark::State& state) {
  par::Mailbox<int> mailbox;
  for (auto _ : state) {
    mailbox.send(1);
    benchmark::DoNotOptimize(mailbox.try_recv());
  }
}
BENCHMARK(BM_MailboxRoundTrip);

void BM_SharedPopulationAccess(benchmark::State& state) {
  core::SharedPopulation population(12);  // the paper's threads-per-node
  Xoshiro256 rng(6);
  for (std::size_t i = 0; i < 12; ++i) {
    population.set(i, random_solution(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(population.random_other(3, rng));
  }
}
BENCHMARK(BM_SharedPopulationAccess);

void BM_ArchiveActorInsert(benchmark::State& state) {
  core::ArchiveActor actor(100, 4, 7);
  Xoshiro256 rng(8);
  for (auto _ : state) {
    actor.insert(random_solution(rng));
  }
  actor.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArchiveActorInsert);

}  // namespace
