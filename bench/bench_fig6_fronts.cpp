/// E4 — regenerates **Figure 6**: the Pareto front approximations of
/// AEDB-MLS versus the Reference front (best of NSGA-II + CellDE) for the
/// three densities, plus §VI's mutual-dominance counts ("AEDB-MLS dominates
/// 13 / is dominated by 54" etc.).
///
/// Output: per-scenario front listings (energy dBm-sum, coverage,
/// forwardings — the figure's three axes), dominance counts with the
/// paper's values alongside, CSVs under results/ for plotting.

#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"
#include "moo/core/aga_archive.hpp"
#include "moo/core/front_io.hpp"

namespace {

using namespace aedbmls;

/// The paper builds each displayed front with AGA (capacity 100) over the
/// best solutions of 30 runs.
std::vector<moo::Solution> aga_merge(const std::vector<expt::RunRecord>& records,
                                     const std::string& algorithm,
                                     const std::string& scenario) {
  moo::AgaArchive archive(100);
  for (const expt::RunRecord& record : records) {
    if (record.scenario != scenario) continue;
    const bool mls = record.algorithm == "AEDB-MLS";
    const bool wanted = (algorithm == "AEDB-MLS") == mls;
    if (!wanted) continue;
    for (const moo::Solution& s : record.front) archive.try_insert(s);
  }
  return archive.contents();
}

void print_front(const char* label, const std::vector<moo::Solution>& front) {
  TextTable table;
  table.set_header({"energy_dBm_sum", "coverage", "forwardings"});
  for (const moo::Solution& s : front) {
    table.add_row({format_double(s.objectives[0], 2),
                   format_double(-s.objectives[1], 2),
                   format_double(s.objectives[2], 2)});
  }
  std::printf("%s (%zu points):\n%s\n", label, front.size(),
              table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_fig6_fronts",
                     "Figure 6 (Pareto fronts) + §VI dominance counts", scale);

  // Paper dominance counts for context (Table II scenarios only):
  // {scenario, MLS dominates, dominated}.
  struct PaperCounts {
    const char* scenario;
    int dominates;
    int dominated;
  };
  const PaperCounts paper[] = {
      {"d100", 13, 54}, {"d200", 11, 40}, {"d300", 15, 17}};

  expt::ExperimentDriver::Options options;
  options.use_cache = false;       // the raw fronts are needed every time
  options.collect_records = true;
  // AEDB-MLS cells spawn their own islands x threads workers; cap the
  // driver with --workers=1 for paper-scale layouts.
  options.workers = static_cast<std::size_t>(std::max(0L, args.get_int("workers", 0)));
  // Honours --ranks / --shard=i/N / --merge=DIR: with collect_records set,
  // a --merge run rebuilds the raw fronts from the shard manifests, so
  // even this records-hungry figure can be produced from a sharded
  // campaign.
  const auto result = expt::run_campaign_or_exit(
      args, expt::ExperimentPlan::of(expt::paper_algorithms(), scale),
      options);
  const std::vector<expt::RunRecord>& records = result.records;

  for (const std::string& scenario : scale.scenarios) {
    std::printf("=============== %s ===============\n", scenario.c_str());
    const auto mls_front = aga_merge(records, "AEDB-MLS", scenario);
    const auto reference = aga_merge(records, "Reference", scenario);

    print_front("AEDB-MLS front", mls_front);
    print_front("Reference front (NSGA-II + CellDE)", reference);

    const std::size_t mls_dominates =
        expt::dominance_count(mls_front, reference);
    const std::size_t mls_dominated =
        expt::dominance_count(reference, mls_front);
    std::printf("dominance: AEDB-MLS dominates %zu reference points, is "
                "dominated by %zu of its own\n",
                mls_dominates, mls_dominated);
    for (const PaperCounts& p : paper) {
      if (scenario == p.scenario) {
        std::printf("paper (30 runs, full budgets): dominates %d, dominated "
                    "by %d\n",
                    p.dominates, p.dominated);
      }
    }

    write_text_file("results/fig6_front_mls_" + scenario + "_" + scale.name +
                        ".csv",
                    moo::front_to_csv(mls_front));
    write_text_file("results/fig6_front_reference_" + scenario + "_" +
                        scale.name + ".csv",
                    moo::front_to_csv(reference));
    std::printf("[out] results/fig6_front_{mls,reference}_%s_%s.csv\n\n",
                scenario.c_str(), scale.name.c_str());
  }

  std::printf("shape check vs the paper: both fronts should show the two-\n"
              "regime structure (a low-energy cluster with modest coverage,\n"
              "then coverage growing faster than forwardings at higher\n"
              "energy), with the MLS front close to, but slightly behind,\n"
              "the reference in accuracy while matching it in spread.\n");
  return 0;
}
