/// E11a — google-benchmark micro-benchmarks of the simulation substrate:
/// event scheduling throughput, mobility queries, propagation math, full
/// AEDB scenarios per density (fresh-construction and pooled-context), and
/// heap-allocation counts per scenario.  These bound the cost of one
/// fitness evaluation, which everything in §V's budget math scales with.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "aedb/scenario.hpp"
#include "sim/core/simulator.hpp"
#include "sim/mobility/random_walk.hpp"
#include "sim/propagation/log_distance.hpp"

/// Global allocation counter: the `allocs_per_run` counters below report
/// the steady-state heap traffic of one scenario run (approximate — the
/// benchmark harness allocates a little between iterations, but that noise
/// is orders of magnitude below the signal being tracked).
///
/// The overrides are `noinline`: when GCC inlines the malloc-backed
/// `operator new` into call sites it misattributes the paired `free` as a
/// new/free mismatch (-Wmismatched-new-delete false positive under -O2).
namespace {
std::atomic<unsigned long long> g_allocations{0};
}  // namespace

#if defined(__GNUC__) || defined(__clang__)
#define AEDB_BENCH_NOINLINE __attribute__((noinline))
#else
#define AEDB_BENCH_NOINLINE
#endif

AEDB_BENCH_NOINLINE void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
AEDB_BENCH_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
AEDB_BENCH_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
AEDB_BENCH_NOINLINE void* operator new[](std::size_t size) {
  return operator new(size);
}
AEDB_BENCH_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
AEDB_BENCH_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace {

using namespace aedbmls;

aedb::AedbParams bench_params() {
  aedb::AedbParams params;
  params.min_delay_s = 0.1;
  params.max_delay_s = 0.8;
  params.border_threshold_dbm = -88.0;
  params.neighbors_threshold = 15.0;
  return params;
}

void BM_SchedulerInsertPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler scheduler;
    std::uint64_t lcg = 1;
    for (std::size_t i = 0; i < n; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      scheduler.insert(sim::nanoseconds(static_cast<std::int64_t>(lcg >> 32)),
                       [] {});
    }
    while (!scheduler.empty()) benchmark::DoNotOptimize(scheduler.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerInsertPop)->Arg(1000)->Arg(10000);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) simulator.schedule(sim::microseconds(1), tick);
    };
    simulator.schedule(sim::microseconds(1), tick);
    simulator.run();
    benchmark::DoNotOptimize(simulator.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_RandomWalkQuery(benchmark::State& state) {
  sim::RandomWalkMobility::Config config;
  const sim::RandomWalkMobility walk(config, {250.0, 250.0}, CounterRng(1));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 13000;  // 13 us steps, forces occasional epoch advance
    benchmark::DoNotOptimize(walk.position(sim::nanoseconds(t)));
  }
}
BENCHMARK(BM_RandomWalkQuery);

void BM_LogDistanceRx(benchmark::State& state) {
  const sim::LogDistancePropagation model;
  double d = 1.0;
  for (auto _ : state) {
    d = d < 400.0 ? d + 0.1 : 1.0;
    benchmark::DoNotOptimize(model.rx_power_dbm(16.02, {0.0, 0.0}, {d, d}));
  }
}
BENCHMARK(BM_LogDistanceRx);

void BM_FullScenario(benchmark::State& state) {
  // Fresh-construction path: the whole object graph is rebuilt per run.
  const int density = static_cast<int>(state.range(0));
  const aedb::ScenarioConfig config = aedb::make_paper_scenario(density, 1, 0);
  const aedb::AedbParams params = bench_params();
  std::uint64_t events = 0;
  const unsigned long long allocs0 = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const auto result = aedb::run_scenario(config, params);
    events += result.events_executed;
    benchmark::DoNotOptimize(result.stats.coverage);
  }
  state.counters["allocs_per_run"] = benchmark::Counter(
      static_cast<double>(g_allocations.load(std::memory_order_relaxed) - allocs0) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/s");
}
BENCHMARK(BM_FullScenario)->Arg(100)->Arg(200)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_FullScenarioPooled(benchmark::State& state) {
  // Pooled-context path (the optimiser hot path): after the first
  // iteration every run re-arms the workspace's cached graph, so
  // `allocs_per_run` approaches the steady-state floor.
  const int density = static_cast<int>(state.range(0));
  const aedb::ScenarioConfig config = aedb::make_paper_scenario(density, 1, 0);
  const aedb::AedbParams params = bench_params();
  aedb::ScenarioWorkspace workspace;
  benchmark::DoNotOptimize(
      aedb::run_scenario(config, params, workspace).stats.coverage);
  std::uint64_t events = 0;
  const unsigned long long allocs0 = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const auto result = aedb::run_scenario(config, params, workspace);
    events += result.events_executed;
    benchmark::DoNotOptimize(result.stats.coverage);
  }
  state.counters["allocs_per_run"] = benchmark::Counter(
      static_cast<double>(g_allocations.load(std::memory_order_relaxed) - allocs0) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/s");
}
BENCHMARK(BM_FullScenarioPooled)->Arg(100)->Arg(200)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_TenNetworkEvaluationAB(benchmark::State& state) {
  // One full paper-style fitness evaluation (10 networks, 100 dev/km^2),
  // fresh-construction and pooled-context paths interleaved A/B inside
  // every iteration.  The earlier sequential comparison (all fresh
  // iterations, then all pooled) charged the pooled path with whatever
  // CPU-frequency decay the fresh warm-up caused; alternating the two
  // paths back-to-back samples both under the same clock state.  Params
  // kept as in the original benchmark so the series stays comparable
  // across PRs.
  aedb::ScenarioConfig config = aedb::make_paper_scenario(100, 1, 0);
  aedb::AedbParams params;
  params.max_delay_s = 0.8;
  params.border_threshold_dbm = -88.0;
  aedb::ScenarioWorkspace workspace;
  // Warm the pool outside timing so the pooled side measures steady state.
  for (std::uint64_t network = 0; network < 10; ++network) {
    config.network.network_index = network;
    benchmark::DoNotOptimize(
        aedb::run_scenario(config, params, workspace).stats.coverage);
  }
  using clock = std::chrono::steady_clock;
  std::chrono::nanoseconds fresh_ns{0};
  std::chrono::nanoseconds pooled_ns{0};
  for (auto _ : state) {
    double fresh_coverage = 0.0;
    double pooled_coverage = 0.0;
    // Pair the paths per network, not per ten-network sweep: the A/B
    // granularity is one scenario run, tight enough that slow frequency
    // drift hits both sides equally.
    for (std::uint64_t network = 0; network < 10; ++network) {
      config.network.network_index = network;
      const auto t0 = clock::now();
      const auto fresh = aedb::run_scenario(config, params);
      const auto t1 = clock::now();
      const auto pooled = aedb::run_scenario(config, params, workspace);
      const auto t2 = clock::now();
      fresh_ns += t1 - t0;
      pooled_ns += t2 - t1;
      fresh_coverage += static_cast<double>(fresh.stats.coverage);
      pooled_coverage += static_cast<double>(pooled.stats.coverage);
    }
    benchmark::DoNotOptimize(fresh_coverage);
    benchmark::DoNotOptimize(pooled_coverage);
    if (fresh_coverage != pooled_coverage) {
      state.SkipWithError("pooled coverage diverged from fresh coverage");
      break;
    }
  }
  const double iterations = static_cast<double>(state.iterations());
  const double fresh_ms =
      std::chrono::duration<double, std::milli>(fresh_ns).count() / iterations;
  const double pooled_ms =
      std::chrono::duration<double, std::milli>(pooled_ns).count() / iterations;
  state.counters["fresh_ms"] = benchmark::Counter(fresh_ms);
  state.counters["pooled_ms"] = benchmark::Counter(pooled_ms);
  state.counters["speedup"] =
      benchmark::Counter(pooled_ms > 0.0 ? fresh_ms / pooled_ms : 0.0);
}
BENCHMARK(BM_TenNetworkEvaluationAB)->Unit(benchmark::kMillisecond);

}  // namespace
