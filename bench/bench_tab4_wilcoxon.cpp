/// E6 — regenerates **Table IV**: pairwise Wilcoxon rank-sum comparison of
/// CellDE, NSGA-II and AEDB-MLS on spread, IGD and hypervolume at 95%
/// confidence, one symbol per density ("N" row better, "v" worse, "-" not
/// significant), with the paper's published symbols alongside.
///
/// Reuses the cached indicator samples produced by bench_fig7_indicators
/// when available (same scale), so running the two in sequence costs one
/// campaign.

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"
#include "moo/stats/wilcoxon.hpp"

namespace {

using namespace aedbmls;

struct Metric {
  const char* name;
  double expt::IndicatorSample::* member;
  bool smaller_better;
};

/// The paper's Table IV symbols, row-vs-column, three densities each
/// (100/200/300), translated to our "N"/"v"/"-" alphabet.
struct PaperRow {
  const char* metric;
  const char* row;
  const char* column;
  const char* symbols;
};
constexpr PaperRow kPaperTable[] = {
    {"Spread", "CellDE", "NSGAII", "NNN"},
    {"Spread", "CellDE", "AEDB-MLS", "N--"},
    {"Spread", "NSGAII", "AEDB-MLS", "-vv"},
    {"IGD", "CellDE", "NSGAII", "vv-"},
    {"IGD", "CellDE", "AEDB-MLS", "NNN"},
    {"IGD", "NSGAII", "AEDB-MLS", "NNN"},
    {"Hypervolume", "CellDE", "NSGAII", "vvv"},
    {"Hypervolume", "CellDE", "AEDB-MLS", "NNN"},
    {"Hypervolume", "NSGAII", "AEDB-MLS", "NNN"},
};

const char* paper_symbols(const char* metric, const std::string& row,
                          const std::string& column) {
  for (const PaperRow& entry : kPaperTable) {
    if (metric == std::string(entry.metric) && row == entry.row &&
        column == entry.column) {
      return entry.symbols;
    }
  }
  return "???";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_tab4_wilcoxon",
                     "Table IV (pairwise Wilcoxon, 95% confidence)", scale);

  expt::ExperimentDriver::Options options;
  options.use_cache = !args.has("no-cache");
  // AEDB-MLS cells spawn their own islands x threads workers; cap the
  // driver with --workers=1 for paper-scale layouts.
  options.workers = static_cast<std::size_t>(std::max(0L, args.get_int("workers", 0)));
  // Honours --ranks / --shard=i/N / --merge=DIR for distributed campaigns.
  const auto samples =
      expt::run_campaign_or_exit(
          args, expt::ExperimentPlan::of(expt::paper_algorithms(), scale),
          options)
          .samples;

  const Metric metrics[] = {
      {"Spread", &expt::IndicatorSample::spread, true},
      {"IGD", &expt::IndicatorSample::igd, true},
      {"Hypervolume", &expt::IndicatorSample::hypervolume, false},
  };

  const auto& algorithms = expt::paper_algorithms();
  for (const Metric& metric : metrics) {
    std::printf("=== %s ===\n", metric.name);
    TextTable table;
    table.set_header({"row \\ column", "vs", "measured(100/200/300)",
                      "paper(100/200/300)"});
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      for (std::size_t j = i + 1; j < algorithms.size(); ++j) {
        std::string measured;
        for (const std::string& scenario : scale.scenarios) {
          const auto row_values =
              expt::extract(samples, algorithms[i], scenario, metric.member);
          const auto col_values =
              expt::extract(samples, algorithms[j], scenario, metric.member);
          if (row_values.size() < 2 || col_values.size() < 2) {
            measured += "?";
            continue;
          }
          measured += moo::comparison_symbol(moo::compare_samples(
              row_values, col_values, metric.smaller_better));
        }
        table.add_row({algorithms[i], algorithms[j], measured,
                       paper_symbols(metric.name, algorithms[i], algorithms[j])});
      }
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("legend: 'N' = row algorithm significantly better than column\n"
              "(Wilcoxon rank-sum, p < 0.05), 'v' = significantly worse,\n"
              "'-' = no significant difference, '?' = not enough runs.\n"
              "Note: at smoke scale (%zu runs) significance is rarer than the\n"
              "paper's 30-run campaign; directions should still align.\n",
              scale.runs);
  return 0;
}
