/// E1/E2 — regenerates **Figure 2** (FAST99 main effect + interaction per
/// parameter, per objective, 300 devices/km²) and **Table I** (sensitivity
/// summary across all densities: direction △/▽ and interaction strength).
///
/// Output: per-objective bar tables (ASCII rendition of Fig. 2's bar plots),
/// the Table I reproduction next to the paper's published entries, and CSV
/// mirrors under results/.

#include <cstdio>
#include <string>

#include "aedb/tuning_problem.hpp"
#include "common/table.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/scenario_catalog.hpp"
#include "moo/sa/fast99.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace aedbmls;

std::string bar(double value, double unit = 0.05) {
  const int blocks = static_cast<int>(value / unit + 0.5);
  return std::string(static_cast<std::size_t>(std::max(blocks, 0)), '#');
}

const char* direction_symbol(double direction) {
  if (direction > 0.1) return "up";    // the paper's black triangle
  if (direction < -0.1) return "down"; // white triangle
  return "~";
}

const char* interaction_word(double interaction) {
  if (interaction > 0.25) return "yes";
  if (interaction > 0.08) return "few";
  return "no";
}

struct ObjectiveView {
  const char* name;
  std::size_t index;  // into the 4-output model
};

constexpr ObjectiveView kObjectives[] = {
    {"broadcast_time", 0},
    {"coverage", 1},
    {"forwardings", 2},
    {"energy", 3},
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_fig2_sensitivity",
                     "Figure 2 (FAST99 indices) and Table I (summary)", scale);

  moo::Fast99Config config;
  config.samples_per_curve = scale.sa_samples;
  config.seed = scale.seed;
  const moo::Fast99 fast(config);

  // §III-B explores wider domains than the tuning problem.
  const auto& domain_array = aedb::AedbParams::sa_domain();
  const std::vector<std::pair<double, double>> domain(domain_array.begin(),
                                                      domain_array.end());
  par::ThreadPool pool;

  // Table I accumulators: per parameter x objective across densities.
  struct Cell {
    double direction = 0.0;
    double interaction = 0.0;
    double main_effect = 0.0;
  };
  std::vector<std::vector<Cell>> summary(
      aedb::AedbParams::kDimensions, std::vector<Cell>(4));

  TextTable csv;
  csv.set_header({"scenario", "objective", "parameter", "main_effect",
                  "interaction", "direction"});

  for (const std::string& scenario : scale.scenarios) {
    const expt::ScenarioSpec spec =
        expt::ScenarioCatalog::instance().resolve(scenario);
    const aedb::AedbTuningProblem problem(spec.problem_config(scale));
    const moo::Fast99::Model model = [&problem](const std::vector<double>& x) {
      const auto d = problem.evaluate_detail(aedb::AedbParams::from_vector(x));
      return std::vector<double>{d.mean_broadcast_time_s, d.mean_coverage,
                                 d.mean_forwardings, d.mean_energy_dbm};
    };
    std::printf("[run] FAST99 on %s: %zu sims...\n", problem.name().c_str(),
                scale.sa_samples * domain.size());
    std::fflush(stdout);
    const moo::Fast99Result result = fast.analyze(domain, model, 4, &pool);

    // Figure 2 proper is the 300-devices panel; print every scenario, flag it.
    std::printf("\n--- %s (%d devices/km^2)%s ---\n", scenario.c_str(),
                spec.devices_per_km2,
                scenario == "d300" ? "  (= paper Figure 2)" : "");
    for (const ObjectiveView& objective : kObjectives) {
      const moo::Fast99Indices& idx = result.outputs[objective.index];
      TextTable table;
      table.set_header({"parameter", "main", "", "inter", "", "dir"});
      for (std::size_t f = 0; f < domain.size(); ++f) {
        table.add_row({aedb::AedbParams::names()[f],
                       format_double(idx.first_order[f], 3),
                       bar(idx.first_order[f]),
                       format_double(idx.interaction[f], 3),
                       bar(idx.interaction[f]),
                       direction_symbol(idx.direction[f])});
        summary[f][objective.index].direction += idx.direction[f];
        summary[f][objective.index].interaction += idx.interaction[f];
        summary[f][objective.index].main_effect += idx.first_order[f];
        csv.add_row({scenario, objective.name,
                     aedb::AedbParams::names()[f],
                     format_double(idx.first_order[f], 5),
                     format_double(idx.interaction[f], 5),
                     format_double(idx.direction[f], 5)});
      }
      std::printf("influence on %s:\n%s\n", objective.name,
                  table.to_string().c_str());
    }
  }

  // ---- Table I reproduction ----
  const double n = static_cast<double>(scale.scenarios.size());
  std::printf("=== Table I reproduction (averaged over scenarios) ===\n");
  std::printf("cell = direction-to-improve / interaction  — paper values in []\n");
  std::printf("objective columns: maximise coverage, minimise forwardings,\n");
  std::printf("minimise energy, constrain broadcast time\n\n");

  // The paper's published Table I entries (direction, interaction).
  const char* paper_table[aedb::AedbParams::kDimensions][4] = {
      // coverage      forwardings   energy        broadcast time
      {"down/few", "up/few", "down/few", "both/yes"},     // min+max delay row ("delay")
      {"down/few", "up/few", "down/few", "both/yes"},     // shown per delay var
      {"up/yes", "up/yes", "up/yes", "~/few"},            // border
      {"up/very-few", "up/no", "up/no", "~/no"},          // margin
      {"up/yes", "up/yes", "up/yes", "down/few"},         // neighbors
  };

  TextTable table1;
  table1.set_header({"parameter", "coverage", "forwardings", "energy_used",
                     "broadcast_time"});
  for (std::size_t f = 0; f < aedb::AedbParams::kDimensions; ++f) {
    std::vector<std::string> row{aedb::AedbParams::names()[f]};
    // Objective order in the model outputs: bt(0), cov(1), fwd(2), energy(3);
    // Table I columns: coverage, forwardings, energy, bt.
    const std::size_t order[4] = {1, 2, 3, 0};
    for (std::size_t col = 0; col < 4; ++col) {
      const Cell& cell = summary[f][order[col]];
      // "Direction to improve": coverage is maximised (follow the sign);
      // forwardings/energy are minimised (invert the sign); broadcast time
      // is a constraint (report raw trend).
      double direction = cell.direction / n;
      if (col == 1 || col == 2) direction = -direction;
      std::string text = std::string(direction_symbol(direction)) + "/" +
                         interaction_word(cell.interaction / n);
      text += "  [" + std::string(paper_table[f][col]) + "]";
      row.push_back(text);
    }
    table1.add_row(std::move(row));
  }
  std::printf("%s\n", table1.to_string().c_str());
  std::printf("interpretation: 'up' = increase the parameter to improve that\n"
              "objective; interaction 'yes/few/no' from total-minus-first-order\n"
              "FAST99 indices.  Expected agreements: border & neighbors drive\n"
              "everything; margin is inert; delays own the bt constraint.\n");

  write_text_file("results/fig2_sensitivity_" + scale.name + ".csv",
                  csv.to_csv());
  std::printf("\n[out] results/fig2_sensitivity_%s.csv\n", scale.name.c_str());
  return 0;
}
