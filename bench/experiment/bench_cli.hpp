#pragma once

/// Thin CLI adapter between the bench mains and the `expt` library: scale
/// resolution with user-facing error reporting, algorithm-list parsing
/// against the registry, and the standard bench header.
///
/// The experiment machinery itself (AlgorithmRegistry, ScenarioCatalog,
/// ExperimentPlan/Driver) lives in `src/expt/`; see EXPERIMENTS.md for the
/// migration note from the old `make_algorithm`/`collect_indicator_samples`
/// plumbing.

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "expt/experiment.hpp"
#include "expt/scale.hpp"

namespace aedbmls::expt {

/// `--list-scenarios` / `--list-algorithms`: prints the registered catalog
/// (name + one-line description) to stdout and exits 0.  No-op when
/// neither flag is present.  Called by `resolve_scale_or_exit`, so every
/// campaign bench supports the flags for free.
void maybe_list_catalogs_and_exit(const CliArgs& args);

/// `resolve_scale`, but invalid input (unknown scale/scenario names,
/// malformed numeric overrides, a `--fidelity` tier no swept scenario
/// declares) prints the error — which lists the valid options — to stderr
/// and exits with status 2.  Also honours the `--list-scenarios` /
/// `--list-algorithms` listing flags (exit 0).
[[nodiscard]] Scale resolve_scale_or_exit(const CliArgs& args);

/// Runs (or merges) a campaign, honouring the distribution flags shared by
/// every campaign bench:
///   --ranks=N      in-process distributed run: the plan's cells strided
///                  over N communicator ranks (expt::DistributedDriver);
///                  bitwise-identical samples at any N
///   --shard=i/N    run only shard i of N (0-based) and write a partial-
///                  results manifest under --shard-dir (default "shards"),
///                  then exit 0 — a later --merge run reassembles the
///                  campaign (see EXPERIMENTS.md "Distributed campaigns")
///   --merge=DIR    skip execution: validate + merge the manifests under
///                  DIR against the plan fingerprint, write the canonical
///                  indicator CSV and reference fronts, and continue the
///                  bench on the merged samples
///   --serve=PORT   elastic coordinator: listen on PORT (0 = ephemeral),
///                  accept --workers=N worker processes (in this mode
///                  --workers names the fleet size, not driver threads —
///                  the coordinator runs no cells itself), pull-schedule
///                  the plan's cells over them with failed-worker requeue
///                  (expt::run_campaign_coordinator), and continue the
///                  bench on the reduced samples — byte-identical to an
///                  unsharded run.  --cost-priors=FILE (a --telemetry-out
///                  dump) seeds the scheduling order
///   --connect=H:P  elastic worker: join the coordinator at HOST:PORT
///                  (retrying with backoff while it boots), compute cells
///                  on demand, then exit 0.  Env knobs:
///                  AEDB_NET_HEARTBEAT_MS / AEDB_NET_DEADLINE_MS /
///                  AEDB_NET_CONNECT_ATTEMPTS tune liveness + retries, and
///                  AEDB_ELASTIC_CELL_DELAY_MS stalls each cell (failure-
///                  injection window for the CI kill test)
///   --cache-dir=D  where the CSV cache / merge artifacts live (default
///                  options.cache_dir, i.e. "results")
///   --progress[=N] live `[progress]` lines on stderr every N completed
///                  cells (default 1): cells-done/total, eval throughput,
///                  per-scenario mean cell time.  Works in plain, --ranks,
///                  --shard and --serve modes (shard feeds count the
///                  shard's own cells); purely observational — result
///                  bytes are identical with or without it
///   --telemetry-out=FILE  dump the run's merged telemetry snapshot via
///                  the line codec (plain/--ranks/--merge/--serve: the
///                  campaign-wide grid-order fold; --shard/--connect: the
///                  executor's own cells).  Written durably — atomic
///                  tmp+rename with a #crc32 trailer — and feeds straight
///                  back into --cost-priors
///   --front-out=DIR  also write the per-scenario reference fronts,
///                  canonically sorted, as
///                  reference_<scale>_<fp>_<scenario>.csv under DIR.
///                  Full-campaign modes only (rejected with --shard /
///                  --connect, which hold partial results)
///   --fault-plan=SPEC  chaos drills: install a seeded deterministic
///                  fault-injection plan (grammar in common/fault.hpp,
///                  drills in EXPERIMENTS.md "Fault drills & chaos
///                  testing").  Falls back to the AEDB_FAULT_PLAN env var;
///                  a malformed spec exits 2
/// Without any of these flags this is exactly
/// `ExperimentDriver(options).run(plan)`.  The distribution modes are
/// mutually exclusive — a conflict names the clashing pair and exits 2,
/// as do malformed specs and campaign/merge failures.  Exit statuses: 0
/// success, 2 bad invocation or failed campaign, 3 (--connect only) the
/// coordinator vanished — missed heartbeat deadline or dead connection
/// (expt::CoordinatorLostError) — so supervisors can tell "restart the
/// coordinator" from "fix the command line".
[[nodiscard]] ExperimentResult run_campaign_or_exit(
    const CliArgs& args, const ExperimentPlan& plan,
    ExperimentDriver::Options options);

/// Algorithm names from `--algorithms=a,b` (default: `fallback`), validated
/// against the registry; unknown names print the registered list and exit 2.
[[nodiscard]] std::vector<std::string> algorithms_or_exit(
    const CliArgs& args, const std::vector<std::string>& fallback);

/// Prints the standard bench header: experiment id, the paper's fixed
/// configuration (Tables II/III) and the active scale + scenario sweep.
void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale);

}  // namespace aedbmls::expt
