#pragma once

/// Thin CLI adapter between the bench mains and the `expt` library: scale
/// resolution with user-facing error reporting, algorithm-list parsing
/// against the registry, and the standard bench header.
///
/// The experiment machinery itself (AlgorithmRegistry, ScenarioCatalog,
/// ExperimentPlan/Driver) lives in `src/expt/`; see EXPERIMENTS.md for the
/// migration note from the old `make_algorithm`/`collect_indicator_samples`
/// plumbing.

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "expt/scale.hpp"

namespace aedbmls::expt {

/// `resolve_scale`, but invalid input (unknown scale/scenario names,
/// malformed numeric overrides) prints the error — which lists the valid
/// options — to stderr and exits with status 2.
[[nodiscard]] Scale resolve_scale_or_exit(const CliArgs& args);

/// Algorithm names from `--algorithms=a,b` (default: `fallback`), validated
/// against the registry; unknown names print the registered list and exit 2.
[[nodiscard]] std::vector<std::string> algorithms_or_exit(
    const CliArgs& args, const std::vector<std::string>& fallback);

/// Prints the standard bench header: experiment id, the paper's fixed
/// configuration (Tables II/III) and the active scale + scenario sweep.
void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale);

}  // namespace aedbmls::expt
