#include "experiment/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/telemetry.hpp"

#include "expt/algorithm_registry.hpp"
#include "expt/distributed_driver.hpp"
#include "expt/manifest.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {

void maybe_list_catalogs_and_exit(const CliArgs& args) {
  const bool scenarios = args.has("list-scenarios");
  const bool algorithms = args.has("list-algorithms");
  if (!scenarios && !algorithms) return;
  if (scenarios) {
    std::printf("registered scenarios (plus dynamic d<N> Table II "
                "densities):\n");
    for (const ScenarioSpec& spec : ScenarioCatalog::instance().specs()) {
      std::printf("  %-14s %s\n", spec.key.c_str(), spec.description.c_str());
    }
  }
  if (algorithms) {
    std::printf("registered algorithms:\n");
    for (const auto& entry : AlgorithmRegistry::instance().entries()) {
      std::printf("  %-16s %s\n", entry.name.c_str(),
                  entry.description.c_str());
    }
  }
  std::exit(0);
}

Scale resolve_scale_or_exit(const CliArgs& args) {
  maybe_list_catalogs_and_exit(args);
  try {
    return resolve_scale(args);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

namespace {

/// `--shard=i/N` with 0-based i in [0, N).
std::pair<std::size_t, std::size_t> parse_shard_spec_or_exit(
    const std::string& spec) {
  const auto bad = [&spec]() -> std::pair<std::size_t, std::size_t> {
    std::fprintf(stderr,
                 "error: bad --shard spec '%s'; expected i/N with 0 <= i < N "
                 "(e.g. --shard=0/3)\n",
                 spec.c_str());
    std::exit(2);
  };
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    return bad();
  }
  // Digits only: stoull would accept (and wrap) a leading '-', turning a
  // typo like 0/-3 into a 2^64-ish shard count instead of an error.
  for (const char c : spec) {
    if (c != '/' && (c < '0' || c > '9')) return bad();
  }
  std::size_t index = 0;
  std::size_t count = 0;
  try {
    std::size_t pos = 0;
    index = std::stoull(spec.substr(0, slash), &pos);
    if (pos != slash) return bad();
    count = std::stoull(spec.substr(slash + 1), &pos);
    if (pos != spec.size() - slash - 1) return bad();
  } catch (const std::exception&) {
    return bad();
  }
  if (count == 0 || index >= count) return bad();
  return {index, count};
}

/// `--progress[=N]`: a ProgressMeter over `total_cells` printing every N
/// cells (default 1).  nullptr when the flag is absent.
std::unique_ptr<telemetry::ProgressMeter> make_progress(
    const CliArgs& args, std::size_t total_cells) {
  if (!args.has("progress")) return nullptr;
  long every = args.get_int("progress", 1);
  if (every < 1) every = 1;
  return std::make_unique<telemetry::ProgressMeter>(
      total_cells, static_cast<std::size_t>(every));
}

}  // namespace

ExperimentResult run_campaign_or_exit(const CliArgs& args,
                                      const ExperimentPlan& plan,
                                      ExperimentDriver::Options options) {
  if (args.has("cache-dir")) options.cache_dir = args.get("cache-dir");
  const bool shard_mode = args.has("shard");
  const bool merge_mode = args.has("merge");
  const bool ranks_mode = args.has("ranks");
  if (static_cast<int>(shard_mode) + static_cast<int>(merge_mode) +
          static_cast<int>(ranks_mode) > 1) {
    std::fprintf(stderr,
                 "error: --shard, --merge and --ranks are mutually "
                 "exclusive\n");
    std::exit(2);
  }
  try {
    if (merge_mode) {
      const std::string dir = args.get("merge");
      if (dir.empty()) {
        std::fprintf(stderr, "error: --merge needs a directory\n");
        std::exit(2);
      }
      auto result = merge_campaign(plan, dir, options);
      std::printf("[merge] %zu indicator samples reassembled from %s -> %s\n",
                  result.samples.size(), dir.c_str(),
                  indicator_csv_path(options.cache_dir, plan).c_str());
      return result;
    }
    if (shard_mode) {
      const auto [index, count] = parse_shard_spec_or_exit(args.get("shard"));
      const std::string dir = args.get("shard-dir", "shards");
      // Reject bad plans before burning a shard's worth of compute — the
      // full/distributed drivers validate inside run(), but run_cells is
      // below that layer.
      validate_plan(plan);
      options.use_cache = false;  // partial grids must never hit the cache
      options.collect_records = false;
      const auto cells = cells_for_shard(plan, index, count);
      // Shard progress counts the shard's own cells, not the whole grid.
      const auto progress = make_progress(args, cells.size());
      options.progress = progress.get();
      std::printf("[shard %zu/%zu] running %zu of %zu cells\n", index, count,
                  cells.size(), plan.cell_count());
      auto records = ExperimentDriver(options).run_cells(plan, cells);
      std::vector<CellResult> results;
      results.reserve(cells.size());
      for (std::size_t i = 0; i < cells.size(); ++i) {
        results.push_back(CellResult{cells[i].index, std::move(records[i])});
      }
      const std::string path = write_manifest(
          dir, make_manifest(plan, index, count, std::move(results)));
      std::printf("[shard %zu/%zu] wrote %s\n", index, count, path.c_str());
      std::exit(0);
    }
    if (ranks_mode) {
      const long ranks = args.get_int("ranks", 0);
      if (ranks < 1) {
        std::fprintf(stderr, "error: --ranks needs a positive rank count\n");
        std::exit(2);
      }
      // One meter shared by every rank (it is thread-safe), so the feed
      // covers the whole world, not one rank's stride.
      const auto progress = make_progress(args, plan.cell_count());
      options.progress = progress.get();
      DistributedDriver::Options distributed;
      distributed.ranks = static_cast<std::size_t>(ranks);
      distributed.driver = std::move(options);
      return DistributedDriver(std::move(distributed)).run(plan);
    }
    const auto progress = make_progress(args, plan.cell_count());
    options.progress = progress.get();
    return ExperimentDriver(std::move(options)).run(plan);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

std::vector<std::string> algorithms_or_exit(
    const CliArgs& args, const std::vector<std::string>& fallback) {
  const std::vector<std::string> names =
      args.has("algorithms") ? split_csv(args.get("algorithms")) : fallback;
  if (names.empty()) {
    std::fprintf(stderr,
                 "error: --algorithms is empty; registered algorithms:");
    for (const auto& name : AlgorithmRegistry::instance().names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!AlgorithmRegistry::instance().contains(names[i])) {
      std::fprintf(stderr, "error: unknown algorithm '%s'; registered:",
                   names[i].c_str());
      for (const auto& known : AlgorithmRegistry::instance().names()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (names[i] == names[j]) {
        std::fprintf(stderr,
                     "error: duplicate algorithm '%s' in --algorithms\n",
                     names[i].c_str());
        std::exit(2);
      }
    }
  }
  return names;
}

void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale) {
  std::printf("================================================================\n");
  std::printf("%s — regenerates %s\n", bench_name.c_str(), regenerates.c_str());
  std::printf("paper setup (Tables II/III): 500x500 m arena, random walk <=2 m/s\n");
  std::printf("  (direction change 20 s), beacons 1 Hz, default tx 16.02 dBm,\n");
  std::printf("  broadcast at t=30 s, end t=40 s; domains: delay [0,1]/[0,5] s,\n");
  std::printf("  border [-95,-70] dBm, margin [0,3] dB, neighbors [0,50]\n");
  std::printf("scale '%s': %zu networks/eval, %zu runs, %zu evals/run, "
              "MLS %zux%zu, seed %llu\n",
              scale.name.c_str(), scale.networks, scale.runs, scale.evals,
              scale.mls_populations, scale.mls_threads,
              static_cast<unsigned long long>(scale.seed));
  std::printf("scenarios:");
  for (const std::string& key : scale.scenarios) {
    std::printf(" %s", key.c_str());
  }
  std::printf("  (catalog:");
  for (const std::string& key : ScenarioCatalog::instance().names()) {
    std::printf(" %s", key.c_str());
  }
  std::printf(")\n");
  std::printf("  (set AEDB_SCALE=paper, AEDB_SCENARIO=..., or --runs/--evals/"
              "--scenarios=... to rescale)\n");
  std::printf("================================================================\n\n");
}

}  // namespace aedbmls::expt
