#include "experiment/bench_cli.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/fault.hpp"
#include "common/telemetry.hpp"
#include "par/net/tcp_transport.hpp"

#include "expt/algorithm_registry.hpp"
#include "expt/campaign_service.hpp"
#include "expt/distributed_driver.hpp"
#include "expt/manifest.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {

void maybe_list_catalogs_and_exit(const CliArgs& args) {
  const bool scenarios = args.has("list-scenarios");
  const bool algorithms = args.has("list-algorithms");
  if (!scenarios && !algorithms) return;
  if (scenarios) {
    std::printf("registered scenarios (plus dynamic d<N> Table II "
                "densities):\n");
    for (const ScenarioSpec& spec : ScenarioCatalog::instance().specs()) {
      std::printf("  %-14s %s\n", spec.key.c_str(), spec.description.c_str());
    }
  }
  if (algorithms) {
    std::printf("registered algorithms:\n");
    for (const auto& entry : AlgorithmRegistry::instance().entries()) {
      std::printf("  %-16s %s\n", entry.name.c_str(),
                  entry.description.c_str());
    }
  }
  std::exit(0);
}

Scale resolve_scale_or_exit(const CliArgs& args) {
  maybe_list_catalogs_and_exit(args);
  try {
    return resolve_scale(args);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

namespace {

/// `--shard=i/N` with 0-based i in [0, N).
std::pair<std::size_t, std::size_t> parse_shard_spec_or_exit(
    const std::string& spec) {
  const auto bad = [&spec]() -> std::pair<std::size_t, std::size_t> {
    std::fprintf(stderr,
                 "error: bad --shard spec '%s'; expected i/N with 0 <= i < N "
                 "(e.g. --shard=0/3)\n",
                 spec.c_str());
    std::exit(2);
  };
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    return bad();
  }
  // Digits only: stoull would accept (and wrap) a leading '-', turning a
  // typo like 0/-3 into a 2^64-ish shard count instead of an error.
  for (const char c : spec) {
    if (c != '/' && (c < '0' || c > '9')) return bad();
  }
  std::size_t index = 0;
  std::size_t count = 0;
  try {
    std::size_t pos = 0;
    index = std::stoull(spec.substr(0, slash), &pos);
    if (pos != slash) return bad();
    count = std::stoull(spec.substr(slash + 1), &pos);
    if (pos != spec.size() - slash - 1) return bad();
  } catch (const std::exception&) {
    return bad();
  }
  if (count == 0 || index >= count) return bad();
  return {index, count};
}

/// `--progress[=N]`: a ProgressMeter over `total_cells` printing every N
/// cells (default 1).  nullptr when the flag is absent.
std::unique_ptr<telemetry::ProgressMeter> make_progress(
    const CliArgs& args, std::size_t total_cells) {
  if (!args.has("progress")) return nullptr;
  long every = args.get_int("progress", 1);
  if (every < 1) every = 1;
  return std::make_unique<telemetry::ProgressMeter>(
      total_cells, static_cast<std::size_t>(every));
}

/// `--telemetry-out=FILE`: dumps the snapshot via the line codec (one
/// `tcounter`/`tgauge`/`thist` line per instrument) — the file feeds
/// straight back into `--cost-priors`.
void maybe_write_telemetry(const CliArgs& args,
                           const telemetry::Snapshot& snapshot) {
  if (!args.has("telemetry-out")) return;
  const std::string path = args.get("telemetry-out");
  if (path.empty()) {
    std::fprintf(stderr, "error: --telemetry-out needs a file path\n");
    std::exit(2);
  }
  const auto lines = telemetry::encode_snapshot(snapshot);
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write telemetry to %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::printf("[telemetry] %zu instrument lines -> %s\n", lines.size(),
              path.c_str());
}

/// `--cost-priors=FILE`: a telemetry snapshot dump (e.g. a previous run's
/// --telemetry-out) whose `scenario.<key>.wall_s` gauges seed the elastic
/// coordinator's scheduling order.
std::map<std::string, double> cost_priors_or_exit(const CliArgs& args) {
  if (!args.has("cost-priors")) return {};
  const std::string path = args.get("cost-priors");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read --cost-priors file %s\n",
                 path.c_str());
    std::exit(2);
  }
  telemetry::Snapshot snapshot;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    try {
      telemetry::decode_snapshot_line(line, snapshot);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "error: %s line %zu: %s\n", path.c_str(),
                   line_number, error.what());
      std::exit(2);
    }
  }
  return cost_priors_from_snapshot(snapshot);
}

/// Network knobs shared by --serve and --connect, from the environment
/// (flags would collide with per-bench options; the elastic CI job and
/// failure-injection tests tune these).
par::net::TcpOptions net_options_from_env() {
  par::net::TcpOptions net;
  net.heartbeat_interval = std::chrono::milliseconds(
      std::max(0L, env_or_int("AEDB_NET_HEARTBEAT_MS", 1000)));
  net.peer_deadline = std::chrono::milliseconds(
      std::max(0L, env_or_int("AEDB_NET_DEADLINE_MS", 10000)));
  net.connect_attempts = static_cast<std::size_t>(
      std::max(1L, env_or_int("AEDB_NET_CONNECT_ATTEMPTS", 30)));
  return net;
}

/// `--connect=HOST:PORT` with a non-empty host and a port in [1, 65535].
std::pair<std::string, std::uint16_t> parse_host_port_or_exit(
    const std::string& spec) {
  const auto bad = [&spec]() -> std::pair<std::string, std::uint16_t> {
    std::fprintf(stderr,
                 "error: bad --connect spec '%s'; expected HOST:PORT "
                 "(e.g. --connect=127.0.0.1:7000)\n",
                 spec.c_str());
    std::exit(2);
  };
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return bad();
  }
  const std::string port_token = spec.substr(colon + 1);
  for (const char c : port_token) {
    if (c < '0' || c > '9') return bad();
  }
  unsigned long port = 0;
  try {
    std::size_t pos = 0;
    port = std::stoul(port_token, &pos);
    if (pos != port_token.size()) return bad();
  } catch (const std::exception&) {
    return bad();
  }
  if (port == 0 || port > 65535) return bad();
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

}  // namespace

ExperimentResult run_campaign_or_exit(const CliArgs& args,
                                      const ExperimentPlan& plan,
                                      ExperimentDriver::Options options) {
  if (args.has("cache-dir")) options.cache_dir = args.get("cache-dir");
  // Chaos drills: `--fault-plan=SPEC` wins over AEDB_FAULT_PLAN (see
  // common/fault.hpp for the grammar and EXPERIMENTS.md for the drills).
  try {
    if (args.has("fault-plan")) {
      fault::configure(args.get("fault-plan"));
    } else {
      fault::configure_from_env();
    }
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
  if (fault::active()) {
    std::fprintf(stderr, "[fault] plan active: %s\n",
                 fault::describe().c_str());
  }
  const bool shard_mode = args.has("shard");
  const bool merge_mode = args.has("merge");
  const bool ranks_mode = args.has("ranks");
  const bool serve_mode = args.has("serve");
  const bool connect_mode = args.has("connect");
  {
    // Distribution modes are mutually exclusive; name the exact clashing
    // pair so the fix is obvious from the message alone.
    const char* kModes[] = {"ranks", "shard", "merge", "serve", "connect"};
    const char* first = nullptr;
    for (const char* mode : kModes) {
      if (!args.has(mode)) continue;
      if (first == nullptr) {
        first = mode;
        continue;
      }
      std::fprintf(stderr,
                   "error: --%s conflicts with --%s; pick one distribution "
                   "mode (--ranks | --shard | --merge | --serve | "
                   "--connect)\n",
                   first, mode);
      std::exit(2);
    }
  }
  try {
    if (merge_mode) {
      const std::string dir = args.get("merge");
      if (dir.empty()) {
        std::fprintf(stderr, "error: --merge needs a directory\n");
        std::exit(2);
      }
      auto result = merge_campaign(plan, dir, options);
      std::printf("[merge] %zu indicator samples reassembled from %s -> %s\n",
                  result.samples.size(), dir.c_str(),
                  indicator_csv_path(options.cache_dir, plan).c_str());
      maybe_write_telemetry(args, result.telemetry);
      return result;
    }
    if (serve_mode) {
      const long port = args.get_int("serve", -1);
      if (port < 0 || port > 65535) {
        std::fprintf(stderr,
                     "error: --serve needs a port in [0, 65535] (0 picks an "
                     "ephemeral port)\n");
        std::exit(2);
      }
      // In serve mode the coordinator runs no cells itself, so --workers
      // names the fleet: how many worker processes to accept.
      const long fleet = args.get_int("workers", 0);
      if (fleet < 1) {
        std::fprintf(stderr,
                     "error: --serve needs --workers=N (the number of "
                     "worker processes that will --connect)\n");
        std::exit(2);
      }
      const auto progress = make_progress(args, plan.cell_count());
      options.progress = progress.get();
      CampaignCoordinatorOptions coordinator;
      coordinator.cost_priors = cost_priors_or_exit(args);
      coordinator.driver = std::move(options);
      par::net::TcpListener listener(static_cast<std::uint16_t>(port),
                                     net_options_from_env());
      std::printf("[serve] listening on port %u; waiting for %ld workers\n",
                  listener.port(), fleet);
      std::fflush(stdout);
      const auto transport =
          listener.accept_workers(static_cast<std::size_t>(fleet));
      std::printf("[serve] %ld workers connected; scheduling %zu cells\n",
                  fleet, plan.cell_count());
      std::fflush(stdout);
      auto result = run_campaign_coordinator(plan, *transport, coordinator);
      transport->close();
      maybe_write_telemetry(args, result.telemetry);
      return result;
    }
    if (connect_mode) {
      const auto [host, port] = parse_host_port_or_exit(args.get("connect"));
      CampaignWorkerOptions worker;
      worker.cell_delay = std::chrono::milliseconds(
          std::max(0L, env_or_int("AEDB_ELASTIC_CELL_DELAY_MS", 0)));
      worker.driver = std::move(options);
      const auto transport =
          par::net::TcpTransport::connect(host, port, net_options_from_env());
      std::printf("[connect] joined %s:%u as rank %zu of %zu\n", host.c_str(),
                  port, transport->rank(), transport->world_size());
      std::fflush(stdout);
      WorkerReport report;
      try {
        report = run_campaign_worker(plan, *transport, worker);
      } catch (const CoordinatorLostError& error) {
        // Distinct exit status: a lost coordinator is an orchestration
        // failure (restart the coordinator, workers reconnect), not a bad
        // invocation (exit 2) or a worker bug.
        std::fprintf(stderr, "error: %s\n", error.what());
        std::exit(3);
      }
      std::printf("[connect] completed %zu cells; coordinator released this "
                  "worker\n",
                  report.cells_completed);
      maybe_write_telemetry(args, report.telemetry);
      // Like --shard, a worker holds partial results only — the bench
      // cannot continue on them, so part ways here.
      std::exit(0);
    }
    if (shard_mode) {
      const auto [index, count] = parse_shard_spec_or_exit(args.get("shard"));
      const std::string dir = args.get("shard-dir", "shards");
      // Reject bad plans before burning a shard's worth of compute — the
      // full/distributed drivers validate inside run(), but run_cells is
      // below that layer.
      validate_plan(plan);
      options.use_cache = false;  // partial grids must never hit the cache
      options.collect_records = false;
      const auto cells = cells_for_shard(plan, index, count);
      // Shard progress counts the shard's own cells, not the whole grid.
      const auto progress = make_progress(args, cells.size());
      options.progress = progress.get();
      std::printf("[shard %zu/%zu] running %zu of %zu cells\n", index, count,
                  cells.size(), plan.cell_count());
      auto records = ExperimentDriver(options).run_cells(plan, cells);
      // The shard's own telemetry fold (its cells in shard order) — the
      // campaign-wide fold belongs to the --merge run.
      if (args.has("telemetry-out")) {
        maybe_write_telemetry(args, merge_telemetry(records));
      }
      std::vector<CellResult> results;
      results.reserve(cells.size());
      for (std::size_t i = 0; i < cells.size(); ++i) {
        results.push_back(CellResult{cells[i].index, std::move(records[i])});
      }
      const std::string path = write_manifest(
          dir, make_manifest(plan, index, count, std::move(results)));
      std::printf("[shard %zu/%zu] wrote %s\n", index, count, path.c_str());
      std::exit(0);
    }
    if (ranks_mode) {
      const long ranks = args.get_int("ranks", 0);
      if (ranks < 1) {
        std::fprintf(stderr, "error: --ranks needs a positive rank count\n");
        std::exit(2);
      }
      // One meter shared by every rank (it is thread-safe), so the feed
      // covers the whole world, not one rank's stride.
      const auto progress = make_progress(args, plan.cell_count());
      options.progress = progress.get();
      DistributedDriver::Options distributed;
      distributed.ranks = static_cast<std::size_t>(ranks);
      distributed.driver = std::move(options);
      auto result = DistributedDriver(std::move(distributed)).run(plan);
      maybe_write_telemetry(args, result.telemetry);
      return result;
    }
    const auto progress = make_progress(args, plan.cell_count());
    options.progress = progress.get();
    auto result = ExperimentDriver(std::move(options)).run(plan);
    maybe_write_telemetry(args, result.telemetry);
    return result;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

std::vector<std::string> algorithms_or_exit(
    const CliArgs& args, const std::vector<std::string>& fallback) {
  const std::vector<std::string> names =
      args.has("algorithms") ? split_csv(args.get("algorithms")) : fallback;
  if (names.empty()) {
    std::fprintf(stderr,
                 "error: --algorithms is empty; registered algorithms:");
    for (const auto& name : AlgorithmRegistry::instance().names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!AlgorithmRegistry::instance().contains(names[i])) {
      std::fprintf(stderr, "error: unknown algorithm '%s'; registered:",
                   names[i].c_str());
      for (const auto& known : AlgorithmRegistry::instance().names()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (names[i] == names[j]) {
        std::fprintf(stderr,
                     "error: duplicate algorithm '%s' in --algorithms\n",
                     names[i].c_str());
        std::exit(2);
      }
    }
  }
  return names;
}

void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale) {
  std::printf("================================================================\n");
  std::printf("%s — regenerates %s\n", bench_name.c_str(), regenerates.c_str());
  std::printf("paper setup (Tables II/III): 500x500 m arena, random walk <=2 m/s\n");
  std::printf("  (direction change 20 s), beacons 1 Hz, default tx 16.02 dBm,\n");
  std::printf("  broadcast at t=30 s, end t=40 s; domains: delay [0,1]/[0,5] s,\n");
  std::printf("  border [-95,-70] dBm, margin [0,3] dB, neighbors [0,50]\n");
  std::printf("scale '%s': %zu networks/eval, %zu runs, %zu evals/run, "
              "MLS %zux%zu, seed %llu\n",
              scale.name.c_str(), scale.networks, scale.runs, scale.evals,
              scale.mls_populations, scale.mls_threads,
              static_cast<unsigned long long>(scale.seed));
  std::printf("scenarios:");
  for (const std::string& key : scale.scenarios) {
    std::printf(" %s", key.c_str());
  }
  std::printf("  (catalog:");
  for (const std::string& key : ScenarioCatalog::instance().names()) {
    std::printf(" %s", key.c_str());
  }
  std::printf(")\n");
  std::printf("  (set AEDB_SCALE=paper, AEDB_SCENARIO=..., or --runs/--evals/"
              "--scenarios=... to rescale)\n");
  std::printf("================================================================\n\n");
}

}  // namespace aedbmls::expt
