#include "experiment/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "expt/algorithm_registry.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {

Scale resolve_scale_or_exit(const CliArgs& args) {
  try {
    return resolve_scale(args);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

std::vector<std::string> algorithms_or_exit(
    const CliArgs& args, const std::vector<std::string>& fallback) {
  const std::vector<std::string> names =
      args.has("algorithms") ? split_csv(args.get("algorithms")) : fallback;
  if (names.empty()) {
    std::fprintf(stderr,
                 "error: --algorithms is empty; registered algorithms:");
    for (const auto& name : AlgorithmRegistry::instance().names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!AlgorithmRegistry::instance().contains(names[i])) {
      std::fprintf(stderr, "error: unknown algorithm '%s'; registered:",
                   names[i].c_str());
      for (const auto& known : AlgorithmRegistry::instance().names()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (names[i] == names[j]) {
        std::fprintf(stderr,
                     "error: duplicate algorithm '%s' in --algorithms\n",
                     names[i].c_str());
        std::exit(2);
      }
    }
  }
  return names;
}

void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale) {
  std::printf("================================================================\n");
  std::printf("%s — regenerates %s\n", bench_name.c_str(), regenerates.c_str());
  std::printf("paper setup (Tables II/III): 500x500 m arena, random walk <=2 m/s\n");
  std::printf("  (direction change 20 s), beacons 1 Hz, default tx 16.02 dBm,\n");
  std::printf("  broadcast at t=30 s, end t=40 s; domains: delay [0,1]/[0,5] s,\n");
  std::printf("  border [-95,-70] dBm, margin [0,3] dB, neighbors [0,50]\n");
  std::printf("scale '%s': %zu networks/eval, %zu runs, %zu evals/run, "
              "MLS %zux%zu, seed %llu\n",
              scale.name.c_str(), scale.networks, scale.runs, scale.evals,
              scale.mls_populations, scale.mls_threads,
              static_cast<unsigned long long>(scale.seed));
  std::printf("scenarios:");
  for (const std::string& key : scale.scenarios) {
    std::printf(" %s", key.c_str());
  }
  std::printf("  (catalog:");
  for (const std::string& key : ScenarioCatalog::instance().names()) {
    std::printf(" %s", key.c_str());
  }
  std::printf(")\n");
  std::printf("  (set AEDB_SCALE=paper, AEDB_SCENARIO=..., or --runs/--evals/"
              "--scenarios=... to rescale)\n");
  std::printf("================================================================\n\n");
}

}  // namespace aedbmls::expt
