#include "experiment/bench_cli.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/telemetry.hpp"
#include "par/net/tcp_transport.hpp"

#include "expt/algorithm_registry.hpp"
#include "expt/campaign_options.hpp"
#include "expt/campaign_service.hpp"
#include "expt/distributed_driver.hpp"
#include "expt/manifest.hpp"
#include "expt/scenario_catalog.hpp"

namespace aedbmls::expt {

void maybe_list_catalogs_and_exit(const CliArgs& args) {
  const bool scenarios = args.has("list-scenarios");
  const bool algorithms = args.has("list-algorithms");
  if (!scenarios && !algorithms) return;
  if (scenarios) {
    std::printf("registered scenarios (plus dynamic d<N> Table II "
                "densities):\n");
    for (const ScenarioSpec& spec : ScenarioCatalog::instance().specs()) {
      std::printf("  %-14s %s\n", spec.key.c_str(), spec.description.c_str());
    }
  }
  if (algorithms) {
    std::printf("registered algorithms:\n");
    for (const auto& entry : AlgorithmRegistry::instance().entries()) {
      std::printf("  %-16s %s\n", entry.name.c_str(),
                  entry.description.c_str());
    }
  }
  std::exit(0);
}

Scale resolve_scale_or_exit(const CliArgs& args) {
  maybe_list_catalogs_and_exit(args);
  try {
    return resolve_scale(args);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

namespace {

/// `--progress[=N]`: a ProgressMeter over `total_cells` printing every N
/// cells.  nullptr when the flag is absent.
std::unique_ptr<telemetry::ProgressMeter> make_progress(
    const CampaignOptions& campaign, std::size_t total_cells) {
  if (!campaign.progress) return nullptr;
  return std::make_unique<telemetry::ProgressMeter>(total_cells,
                                                    campaign.progress_every);
}

/// `--telemetry-out=FILE`: durable dump of the snapshot via the line codec
/// (atomic replace + #crc32 trailer) — the file feeds straight back into
/// `--cost-priors`.
void maybe_write_telemetry(const CampaignOptions& campaign,
                           const telemetry::Snapshot& snapshot) {
  if (campaign.telemetry_out.empty()) return;
  const std::size_t lines =
      write_telemetry_file(campaign.telemetry_out, snapshot);
  std::printf("[telemetry] %zu instrument lines -> %s\n", lines,
              campaign.telemetry_out.c_str());
}

/// `--front-out=DIR`: canonically-sorted per-scenario reference fronts.
void maybe_write_fronts(const CampaignOptions& campaign,
                        const ExperimentPlan& plan,
                        const ExperimentResult& result) {
  if (campaign.front_out.empty()) return;
  write_front_csvs(campaign.front_out, plan, result.records);
  std::printf("[front] %zu scenario reference fronts -> %s/\n",
              plan.scenarios.size(), campaign.front_out.c_str());
}

/// Network knobs shared by --serve and --connect, from the environment
/// (flags would collide with per-bench options; the elastic CI job and
/// failure-injection tests tune these).
par::net::TcpOptions net_options_from_env() {
  par::net::TcpOptions net;
  net.heartbeat_interval = std::chrono::milliseconds(
      std::max(0L, env_or_int("AEDB_NET_HEARTBEAT_MS", 1000)));
  net.peer_deadline = std::chrono::milliseconds(
      std::max(0L, env_or_int("AEDB_NET_DEADLINE_MS", 10000)));
  net.connect_attempts = static_cast<std::size_t>(
      std::max(1L, env_or_int("AEDB_NET_CONNECT_ATTEMPTS", 30)));
  return net;
}

}  // namespace

ExperimentResult run_campaign_or_exit(const CliArgs& args,
                                      const ExperimentPlan& plan,
                                      ExperimentDriver::Options options) {
  CampaignOptions campaign;
  try {
    campaign = parse_campaign_options(args);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
  if (campaign.cache_dir) options.cache_dir = *campaign.cache_dir;
  // `--front-out` needs the raw fronts, not just the indicator reduction.
  if (!campaign.front_out.empty()) options.collect_records = true;
  // Chaos drills: `--fault-plan=SPEC` wins over AEDB_FAULT_PLAN (see
  // common/fault.hpp for the grammar and EXPERIMENTS.md for the drills).
  try {
    if (campaign.fault_plan) {
      fault::configure(*campaign.fault_plan);
    } else {
      fault::configure_from_env();
    }
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
  if (fault::active()) {
    std::fprintf(stderr, "[fault] plan active: %s\n",
                 fault::describe().c_str());
  }
  try {
    switch (campaign.mode) {
      case CampaignMode::kMerge: {
        auto result = merge_campaign(plan, campaign.merge_dir, options);
        std::printf(
            "[merge] %zu indicator samples reassembled from %s -> %s\n",
            result.samples.size(), campaign.merge_dir.c_str(),
            indicator_csv_path(options.cache_dir, plan).c_str());
        maybe_write_telemetry(campaign, result.telemetry);
        maybe_write_fronts(campaign, plan, result);
        return result;
      }
      case CampaignMode::kServe: {
        const auto progress = make_progress(campaign, plan.cell_count());
        options.progress = progress.get();
        CampaignCoordinatorOptions coordinator;
        coordinator.cost_priors = campaign.cost_priors;
        coordinator.driver = std::move(options);
        par::net::TcpListener listener(campaign.serve_port,
                                       net_options_from_env());
        std::printf("[serve] listening on port %u; waiting for %zu workers\n",
                    listener.port(), campaign.fleet);
        std::fflush(stdout);
        const auto transport = listener.accept_workers(campaign.fleet);
        std::printf("[serve] %zu workers connected; scheduling %zu cells\n",
                    campaign.fleet, plan.cell_count());
        std::fflush(stdout);
        auto result = run_campaign_coordinator(plan, *transport, coordinator);
        transport->close();
        maybe_write_telemetry(campaign, result.telemetry);
        maybe_write_fronts(campaign, plan, result);
        return result;
      }
      case CampaignMode::kConnect: {
        CampaignWorkerOptions worker;
        worker.cell_delay = std::chrono::milliseconds(
            std::max(0L, env_or_int("AEDB_ELASTIC_CELL_DELAY_MS", 0)));
        worker.driver = std::move(options);
        const auto transport = par::net::TcpTransport::connect(
            campaign.connect_host, campaign.connect_port,
            net_options_from_env());
        std::printf("[connect] joined %s:%u as rank %zu of %zu\n",
                    campaign.connect_host.c_str(), campaign.connect_port,
                    transport->rank(), transport->world_size());
        std::fflush(stdout);
        WorkerReport report;
        try {
          report = run_campaign_worker(plan, *transport, worker);
        } catch (const CoordinatorLostError& error) {
          // Distinct exit status: a lost coordinator is an orchestration
          // failure (restart the coordinator, workers reconnect), not a bad
          // invocation (exit 2) or a worker bug.
          std::fprintf(stderr, "error: %s\n", error.what());
          std::exit(3);
        }
        std::printf("[connect] completed %zu cells; coordinator released "
                    "this worker\n",
                    report.cells_completed);
        maybe_write_telemetry(campaign, report.telemetry);
        // Like --shard, a worker holds partial results only — the bench
        // cannot continue on them, so part ways here.
        std::exit(0);
      }
      case CampaignMode::kShard: {
        // Reject bad plans before burning a shard's worth of compute — the
        // full/distributed drivers validate inside run(), but run_cells is
        // below that layer.
        validate_plan(plan);
        options.use_cache = false;  // partial grids must never hit the cache
        options.collect_records = false;
        const auto cells =
            cells_for_shard(plan, campaign.shard_index, campaign.shard_count);
        // Shard progress counts the shard's own cells, not the whole grid.
        const auto progress = make_progress(campaign, cells.size());
        options.progress = progress.get();
        std::printf("[shard %zu/%zu] running %zu of %zu cells\n",
                    campaign.shard_index, campaign.shard_count, cells.size(),
                    plan.cell_count());
        auto records = ExperimentDriver(options).run_cells(plan, cells);
        // The shard's own telemetry fold (its cells in shard order) — the
        // campaign-wide fold belongs to the --merge run.
        if (!campaign.telemetry_out.empty()) {
          maybe_write_telemetry(campaign, merge_telemetry(records));
        }
        std::vector<CellResult> results;
        results.reserve(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
          results.push_back(CellResult{cells[i].index, std::move(records[i])});
        }
        const std::string path = write_manifest(
            campaign.shard_dir,
            make_manifest(plan, campaign.shard_index, campaign.shard_count,
                          std::move(results)));
        std::printf("[shard %zu/%zu] wrote %s\n", campaign.shard_index,
                    campaign.shard_count, path.c_str());
        std::exit(0);
      }
      case CampaignMode::kRanks: {
        // One meter shared by every rank (it is thread-safe), so the feed
        // covers the whole world, not one rank's stride.
        const auto progress = make_progress(campaign, plan.cell_count());
        options.progress = progress.get();
        DistributedDriver::Options distributed;
        distributed.ranks = campaign.ranks;
        distributed.driver = std::move(options);
        auto result = DistributedDriver(std::move(distributed)).run(plan);
        maybe_write_telemetry(campaign, result.telemetry);
        maybe_write_fronts(campaign, plan, result);
        return result;
      }
      case CampaignMode::kLocal: {
        const auto progress = make_progress(campaign, plan.cell_count());
        options.progress = progress.get();
        auto result = ExperimentDriver(std::move(options)).run(plan);
        maybe_write_telemetry(campaign, result.telemetry);
        maybe_write_fronts(campaign, plan, result);
        return result;
      }
    }
    AEDB_UNREACHABLE("unhandled campaign mode");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

std::vector<std::string> algorithms_or_exit(
    const CliArgs& args, const std::vector<std::string>& fallback) {
  const std::vector<std::string> names =
      args.has("algorithms") ? split_csv(args.get("algorithms")) : fallback;
  if (names.empty()) {
    std::fprintf(stderr,
                 "error: --algorithms is empty; registered algorithms:");
    for (const auto& name : AlgorithmRegistry::instance().names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!AlgorithmRegistry::instance().contains(names[i])) {
      std::fprintf(stderr, "error: unknown algorithm '%s'; registered:",
                   names[i].c_str());
      for (const auto& known : AlgorithmRegistry::instance().names()) {
        std::fprintf(stderr, " %s", known.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (names[i] == names[j]) {
        std::fprintf(stderr,
                     "error: duplicate algorithm '%s' in --algorithms\n",
                     names[i].c_str());
        std::exit(2);
      }
    }
  }
  return names;
}

void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale) {
  std::printf("================================================================\n");
  std::printf("%s — regenerates %s\n", bench_name.c_str(), regenerates.c_str());
  std::printf("paper setup (Tables II/III): 500x500 m arena, random walk <=2 m/s\n");
  std::printf("  (direction change 20 s), beacons 1 Hz, default tx 16.02 dBm,\n");
  std::printf("  broadcast at t=30 s, end t=40 s; domains: delay [0,1]/[0,5] s,\n");
  std::printf("  border [-95,-70] dBm, margin [0,3] dB, neighbors [0,50]\n");
  std::printf("scale '%s': %zu networks/eval, %zu runs, %zu evals/run, "
              "MLS %zux%zu, seed %llu, fidelity %s\n",
              scale.name.c_str(), scale.networks, scale.runs, scale.evals,
              scale.mls_populations, scale.mls_threads,
              static_cast<unsigned long long>(scale.seed),
              scale.fidelity.c_str());
  std::printf("scenarios:");
  for (const std::string& key : scale.scenarios) {
    std::printf(" %s", key.c_str());
  }
  std::printf("  (catalog:");
  for (const std::string& key : ScenarioCatalog::instance().names()) {
    std::printf(" %s", key.c_str());
  }
  std::printf(")\n");
  std::printf("  (set AEDB_SCALE=paper, AEDB_SCENARIO=..., --fidelity=race, "
              "or --runs/--evals/--scenarios=... to rescale)\n");
  std::printf("================================================================\n\n");
}

}  // namespace aedbmls::expt
