#pragma once

/// Shared experiment plumbing: algorithm factories configured per the paper,
/// repeated-run execution, reference-front construction and normalised
/// indicator collection — the machinery behind E4 (Fig. 6), E5 (Fig. 7) and
/// E6 (Table IV).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aedb/tuning_problem.hpp"
#include "experiment/scale.hpp"
#include "moo/algorithms/algorithm.hpp"
#include "moo/core/evaluation_engine.hpp"

namespace aedbmls::expt {

/// The three contenders of the paper's §VI.
inline const std::vector<std::string>& paper_algorithms() {
  static const std::vector<std::string> names{"CellDE", "NSGAII", "AEDB-MLS"};
  return names;
}

/// Tuning problem for one density under the given scale (shared network
/// ensemble seed so every algorithm sees identical instances).
[[nodiscard]] aedb::AedbTuningProblem::Config problem_config(int density,
                                                             const Scale& scale);

/// Instantiates an algorithm by name ("NSGAII", "CellDE", "AEDB-MLS",
/// "AEDB-MLS-sym", "AEDB-MLS-unguided", "AEDB-MLS-pervar", "CellDE+MLS",
/// "Random") configured per the paper and the scale.  `evaluator` batches
/// the generational EAs' population evaluations through an
/// `EvaluationEngine` when non-null (the paper ran them serially; see
/// EXPERIMENTS.md for where we deviate and why).
[[nodiscard]] std::unique_ptr<moo::Algorithm> make_algorithm(
    const std::string& name, const Scale& scale,
    const moo::EvaluationEngine* evaluator = nullptr);

/// One (algorithm, density, run) outcome.
struct RunRecord {
  std::string algorithm;
  int density = 0;
  std::uint64_t run_seed = 0;
  std::vector<moo::Solution> front;
  std::size_t evaluations = 0;
  double wall_seconds = 0.0;
};

/// Executes `scale.runs` independent runs of `algorithm` on `density`.
[[nodiscard]] std::vector<RunRecord> run_repeats(const std::string& algorithm,
                                                 int density, const Scale& scale,
                                                 const moo::EvaluationEngine* evaluator);

/// Normalised quality indicators of one run against a reference front.
struct IndicatorSample {
  std::string algorithm;
  int density = 0;
  std::uint64_t run_seed = 0;
  double hypervolume = 0.0;
  double igd = 0.0;     ///< the paper's Eq. 3
  double spread = 0.0;  ///< generalised spread (3 objectives)
};

/// Runs all `algorithms` x `scale.densities` x `scale.runs`, builds the
/// per-density reference front from ALL runs (the paper's normalisation
/// protocol), and returns per-run indicators.  Results are cached as CSV
/// under `results/` keyed by the scale fingerprint; pass `use_cache=false`
/// (--no-cache) to force recomputation.  `records_out`, when non-null, also
/// receives the raw fronts (Fig. 6 needs them).
[[nodiscard]] std::vector<IndicatorSample> collect_indicator_samples(
    const std::vector<std::string>& algorithms, const Scale& scale,
    bool use_cache, std::vector<RunRecord>* records_out = nullptr);

/// Values of one (algorithm, density) cell, in run order.
[[nodiscard]] std::vector<double> extract(
    const std::vector<IndicatorSample>& samples, const std::string& algorithm,
    int density, double IndicatorSample::* member);

/// Counts how many solutions of `b` are dominated by at least one of `a`.
[[nodiscard]] std::size_t dominance_count(const std::vector<moo::Solution>& a,
                                          const std::vector<moo::Solution>& b);

}  // namespace aedbmls::expt
