#pragma once

/// Experiment scale management.
///
/// Every table/figure bench honours three preset scales selected by the
/// `AEDB_SCALE` environment variable or `--scale=` flag:
///   * smoke (default) — minutes on a laptop: fewer evaluation networks,
///     small budgets, few repetitions.  Shapes are preserved, variance is
///     higher.
///   * small — tens of minutes: intermediate.
///   * paper — the paper's §V setup: 10 networks per evaluation,
///     8 populations x 12 threads x 250 evaluations, 30 repetitions.
/// Individual knobs can be overridden by flags (--runs, --evals,
/// --networks, --densities=100,200).

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace aedbmls::expt {

struct Scale {
  std::string name = "smoke";
  std::size_t networks = 3;   ///< evaluation networks per fitness call
  std::size_t runs = 5;       ///< independent runs per (algorithm, density)
  std::size_t evals = 120;    ///< evaluation budget per algorithm run
  std::size_t mls_populations = 2;
  std::size_t mls_threads = 2;
  std::size_t sa_samples = 65;  ///< FAST99 Ns per factor
  std::vector<int> densities{100, 200, 300};
  std::uint64_t seed = 20130520;  ///< master seed (network ensemble + runs)

  /// MLS per-thread budget for the configured layout.
  [[nodiscard]] std::size_t mls_evals_per_thread() const {
    const std::size_t workers = mls_populations * mls_threads;
    return std::max<std::size_t>(1, evals / workers);
  }
};

/// Resolves the scale from AEDB_SCALE / --scale, then applies flag overrides.
[[nodiscard]] Scale resolve_scale(const CliArgs& args);

/// Prints the standard bench header: experiment id, the paper's fixed
/// configuration (Tables II/III) and the active scale.
void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale);

}  // namespace aedbmls::expt
