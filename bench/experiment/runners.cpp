#include "experiment/runners.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/hybrid.hpp"
#include "core/mls.hpp"
#include "moo/algorithms/cellde.hpp"
#include "moo/algorithms/nsga2.hpp"
#include "moo/algorithms/random_search.hpp"
#include "moo/core/dominance.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/normalization.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/indicators/igd.hpp"
#include "moo/indicators/spread.hpp"

namespace aedbmls::expt {
namespace {

core::MlsConfig mls_config_for(const Scale& scale) {
  core::MlsConfig config;
  config.populations = scale.mls_populations;
  config.threads_per_population = scale.mls_threads;
  config.evaluations_per_thread = scale.mls_evals_per_thread();
  config.reset_period = 50;  // the paper's tuned value (§V)
  config.alpha = 0.2;        // the paper's tuned value (§V)
  config.archive_capacity = 100;
  config.criteria = core::aedb_criteria();
  return config;
}

std::string cache_path(const std::vector<std::string>& algorithms,
                       const Scale& scale) {
  std::uint64_t key = hash_combine(scale.seed, scale.runs);
  key = hash_combine(key, scale.evals);
  key = hash_combine(key, scale.networks);
  for (const auto& name : algorithms) {
    for (const char c : name) key = hash_combine(key, static_cast<std::uint64_t>(c));
  }
  for (const int d : scale.densities) {
    key = hash_combine(key, static_cast<std::uint64_t>(d));
  }
  std::ostringstream os;
  os << "results/indicators_" << scale.name << "_" << std::hex << key << ".csv";
  return os.str();
}

std::optional<std::vector<IndicatorSample>> load_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<IndicatorSample> samples;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    IndicatorSample s;
    std::string cell;
    std::getline(row, s.algorithm, ',');
    std::getline(row, cell, ',');
    s.density = std::stoi(cell);
    std::getline(row, cell, ',');
    s.run_seed = std::stoull(cell);
    std::getline(row, cell, ',');
    s.hypervolume = std::stod(cell);
    std::getline(row, cell, ',');
    s.igd = std::stod(cell);
    std::getline(row, cell, ',');
    s.spread = std::stod(cell);
    samples.push_back(std::move(s));
  }
  return samples;
}

void store_cache(const std::string& path,
                 const std::vector<IndicatorSample>& samples) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << "algorithm,density,run_seed,hypervolume,igd,spread\n";
  out.precision(17);
  for (const IndicatorSample& s : samples) {
    out << s.algorithm << ',' << s.density << ',' << s.run_seed << ','
        << s.hypervolume << ',' << s.igd << ',' << s.spread << '\n';
  }
}

}  // namespace

aedb::AedbTuningProblem::Config problem_config(int density, const Scale& scale) {
  aedb::AedbTuningProblem::Config config;
  config.devices_per_km2 = density;
  config.network_count = scale.networks;
  config.seed = scale.seed;
  return config;
}

std::unique_ptr<moo::Algorithm> make_algorithm(const std::string& name,
                                               const Scale& scale,
                                               const moo::EvaluationEngine* evaluator) {
  if (name == "NSGAII") {
    moo::Nsga2::Config config;
    // Ruiz et al. 2012 used population 100; shrink with the budget so a
    // smoke run still evolves for several generations.
    config.population_size = std::max<std::size_t>(20, scale.evals / 50);
    config.max_evaluations = scale.evals;
    config.evaluator = evaluator;
    return std::make_unique<moo::Nsga2>(config);
  }
  if (name == "CellDE") {
    moo::CellDe::Config config;
    const auto side = static_cast<std::size_t>(std::sqrt(
        static_cast<double>(std::max<std::size_t>(20, scale.evals / 50))));
    config.grid_width = std::max<std::size_t>(4, side);
    config.grid_height = std::max<std::size_t>(4, side);
    config.max_evaluations = scale.evals;
    config.archive_capacity = 100;
    config.evaluator = evaluator;
    return std::make_unique<moo::CellDe>(config);
  }
  if (name == "AEDB-MLS") {
    return std::make_unique<core::AedbMls>(mls_config_for(scale));
  }
  if (name == "AEDB-MLS-sym") {  // E9: symmetric step
    core::MlsConfig config = mls_config_for(scale);
    config.symmetric_step = true;
    return std::make_unique<core::AedbMls>(config);
  }
  if (name == "AEDB-MLS-unguided") {  // E9: no sensitivity guidance
    core::MlsConfig config = mls_config_for(scale);
    config.criteria = core::all_variables_criterion(5);
    return std::make_unique<core::AedbMls>(config);
  }
  if (name == "AEDB-MLS-pervar") {  // E9: guidance without grouping
    core::MlsConfig config = mls_config_for(scale);
    config.criteria = core::per_variable_criteria(5);
    return std::make_unique<core::AedbMls>(config);
  }
  if (name == "CellDE+MLS") {  // the paper's future-work hybrid (S13)
    core::CellDeMlsHybrid::Config config;
    config.cellde.grid_width = 5;
    config.cellde.grid_height = 4;
    config.cellde.max_evaluations = scale.evals;
    config.cellde.archive_capacity = 100;
    config.cellde.evaluator = evaluator;
    config.mls = mls_config_for(scale);
    config.mls.evaluations_per_thread =
        std::max<std::size_t>(1, config.mls.evaluations_per_thread / 2);
    config.explore_fraction = 0.5;
    return std::make_unique<core::CellDeMlsHybrid>(config);
  }
  if (name == "Random") {
    moo::RandomSearch::Config config;
    config.max_evaluations = scale.evals;
    config.archive_capacity = 100;
    config.evaluator = evaluator;
    return std::make_unique<moo::RandomSearch>(config);
  }
  AEDB_UNREACHABLE("unknown algorithm name");
}

std::vector<RunRecord> run_repeats(const std::string& algorithm, int density,
                                   const Scale& scale,
                                   const moo::EvaluationEngine* evaluator) {
  const aedb::AedbTuningProblem problem(problem_config(density, scale));
  std::vector<RunRecord> records;
  records.reserve(scale.runs);
  for (std::size_t run = 0; run < scale.runs; ++run) {
    const std::uint64_t run_seed =
        hash_combine(hash_combine(scale.seed, static_cast<std::uint64_t>(density)),
                     run + 1);
    auto instance = make_algorithm(algorithm, scale, evaluator);
    const moo::AlgorithmResult result = instance->run(problem, run_seed);
    RunRecord record;
    record.algorithm = algorithm;
    record.density = density;
    record.run_seed = run_seed;
    record.front = result.front;
    record.evaluations = result.evaluations;
    record.wall_seconds = result.wall_seconds;
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<IndicatorSample> collect_indicator_samples(
    const std::vector<std::string>& algorithms, const Scale& scale,
    bool use_cache, std::vector<RunRecord>* records_out) {
  const std::string path = cache_path(algorithms, scale);
  if (use_cache && records_out == nullptr) {
    if (auto cached = load_cache(path)) {
      std::printf("[cache] loaded %zu indicator samples from %s\n",
                  cached->size(), path.c_str());
      return *cached;
    }
  }

  // One pool + engine for the whole experiment: every generational EA run
  // batches its population evaluations through here.
  par::ThreadPool pool;
  const moo::EvaluationEngine engine(&pool);
  std::vector<IndicatorSample> samples;
  for (const int density : scale.densities) {
    // All runs of all algorithms on this density.
    std::vector<RunRecord> records;
    for (const auto& algorithm : algorithms) {
      std::printf("[run] %-18s density %d: %zu runs x %zu evals...\n",
                  algorithm.c_str(), density, scale.runs, scale.evals);
      std::fflush(stdout);
      auto batch = run_repeats(algorithm, density, scale, &engine);
      records.insert(records.end(), std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
    }

    // The paper's protocol: reference front = non-dominated union of every
    // run of every algorithm; all fronts normalised by its bounds.
    std::vector<std::vector<moo::Solution>> fronts;
    fronts.reserve(records.size());
    for (const RunRecord& record : records) fronts.push_back(record.front);
    const auto reference = moo::merge_fronts(fronts);
    if (reference.empty()) {
      log_warn("empty reference front for density ", density);
      continue;
    }
    const moo::ObjectiveBounds bounds = moo::bounds_of(reference);
    const auto reference_norm = moo::normalize_front(reference, bounds);

    for (const RunRecord& record : records) {
      IndicatorSample sample;
      sample.algorithm = record.algorithm;
      sample.density = density;
      sample.run_seed = record.run_seed;
      if (!record.front.empty()) {
        const auto front = moo::normalize_front(record.front, bounds);
        sample.hypervolume = moo::hypervolume(front, moo::unit_reference(3));
        sample.igd = moo::paper_igd(front, reference_norm);
        sample.spread = moo::generalized_spread(front, reference_norm);
      }
      samples.push_back(std::move(sample));
    }
    if (records_out != nullptr) {
      records_out->insert(records_out->end(),
                          std::make_move_iterator(records.begin()),
                          std::make_move_iterator(records.end()));
    }
  }
  store_cache(path, samples);
  return samples;
}

std::vector<double> extract(const std::vector<IndicatorSample>& samples,
                            const std::string& algorithm, int density,
                            double IndicatorSample::* member) {
  std::vector<double> out;
  for (const IndicatorSample& s : samples) {
    if (s.algorithm == algorithm && s.density == density) {
      out.push_back(s.*member);
    }
  }
  return out;
}

std::size_t dominance_count(const std::vector<moo::Solution>& a,
                            const std::vector<moo::Solution>& b) {
  std::size_t count = 0;
  for (const moo::Solution& target : b) {
    for (const moo::Solution& candidate : a) {
      if (moo::dominates(candidate, target)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace aedbmls::expt
