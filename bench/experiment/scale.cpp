#include "experiment/scale.hpp"

#include <cstdio>
#include <sstream>

#include "common/logging.hpp"

namespace aedbmls::expt {
namespace {

Scale preset(const std::string& name) {
  Scale scale;
  scale.name = name;
  if (name == "paper") {
    scale.networks = 10;
    scale.runs = 30;
    scale.evals = 24000;
    scale.mls_populations = 8;
    scale.mls_threads = 12;
    scale.sa_samples = 1001;
  } else if (name == "small") {
    scale.networks = 5;
    scale.runs = 10;
    scale.evals = 600;
    scale.mls_populations = 4;
    scale.mls_threads = 3;
    scale.sa_samples = 129;
  } else {
    if (name != "smoke") {
      log_warn("unknown scale '", name, "', using smoke");
    }
    scale.name = "smoke";
  }
  return scale;
}

std::vector<int> parse_densities(const std::string& csv) {
  std::vector<int> out;
  std::istringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (!token.empty()) out.push_back(std::stoi(token));
  }
  return out;
}

}  // namespace

Scale resolve_scale(const CliArgs& args) {
  const std::string name = args.get("scale", env_or("AEDB_SCALE", "smoke"));
  Scale scale = preset(name);
  scale.networks = static_cast<std::size_t>(
      args.get_int("networks", static_cast<long>(scale.networks)));
  scale.runs = static_cast<std::size_t>(
      args.get_int("runs", static_cast<long>(scale.runs)));
  scale.evals = static_cast<std::size_t>(
      args.get_int("evals", static_cast<long>(scale.evals)));
  scale.sa_samples = static_cast<std::size_t>(
      args.get_int("sa-samples", static_cast<long>(scale.sa_samples)));
  scale.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long>(scale.seed)));
  if (args.has("densities")) {
    scale.densities = parse_densities(args.get("densities"));
  }
  return scale;
}

void print_header(const std::string& bench_name, const std::string& regenerates,
                  const Scale& scale) {
  std::printf("================================================================\n");
  std::printf("%s — regenerates %s\n", bench_name.c_str(), regenerates.c_str());
  std::printf("paper setup (Tables II/III): 500x500 m arena, random walk <=2 m/s\n");
  std::printf("  (direction change 20 s), beacons 1 Hz, default tx 16.02 dBm,\n");
  std::printf("  broadcast at t=30 s, end t=40 s; domains: delay [0,1]/[0,5] s,\n");
  std::printf("  border [-95,-70] dBm, margin [0,3] dB, neighbors [0,50]\n");
  std::printf("scale '%s': %zu networks/eval, %zu runs, %zu evals/run, "
              "MLS %zux%zu, seed %llu\n",
              scale.name.c_str(), scale.networks, scale.runs, scale.evals,
              scale.mls_populations, scale.mls_threads,
              static_cast<unsigned long long>(scale.seed));
  std::printf("  (set AEDB_SCALE=paper or --runs/--evals/... to rescale)\n");
  std::printf("================================================================\n\n");
}

}  // namespace aedbmls::expt
