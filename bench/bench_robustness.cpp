/// E12 (extension, beyond the paper) — robustness of tuned configurations:
/// the paper tunes AEDB under random-walk mobility and clean log-distance
/// propagation; a deployed protocol faces other regimes.  This bench tunes
/// at the current scale, picks the knee configuration of the front, and
/// re-evaluates it under: static nodes, random-waypoint, Gauss-Markov,
/// and log-normal shadowing (sigma 4 / 8 dB).

#include <cstdio>

#include "aedb/tuning_problem.hpp"
#include "common/table.hpp"
#include "core/mls.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"
#include "moo/analysis/knee.hpp"

namespace {

using namespace aedbmls;

struct Condition {
  const char* name;
  sim::MobilityKind mobility;
  double shadowing_sigma;
};

constexpr Condition kConditions[] = {
    {"random walk (tuning regime)", sim::MobilityKind::kRandomWalk, 0.0},
    {"static nodes", sim::MobilityKind::kStatic, 0.0},
    {"random waypoint", sim::MobilityKind::kRandomWaypoint, 0.0},
    {"gauss-markov", sim::MobilityKind::kGaussMarkov, 0.0},
    {"shadowing sigma=4 dB", sim::MobilityKind::kRandomWalk, 4.0},
    {"shadowing sigma=8 dB", sim::MobilityKind::kRandomWalk, 8.0},
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_robustness",
                     "extension E12: tuned configuration under other regimes",
                     scale);

  const expt::ScenarioSpec spec =
      expt::ScenarioCatalog::instance().resolve(scale.scenarios.front());
  const aedb::AedbTuningProblem problem(spec.problem_config(scale));

  // Tune once at the current scale, take the knee configuration.
  std::printf("[run] tuning with AEDB-MLS on %s...\n", problem.name().c_str());
  std::fflush(stdout);
  auto mls = expt::AlgorithmRegistry::instance().create("AEDB-MLS", scale);
  const moo::AlgorithmResult tuned = mls->run(problem, scale.seed);
  if (tuned.front.empty()) {
    std::printf("tuning produced no feasible front; aborting\n");
    return 1;
  }
  const aedb::AedbParams knee = aedb::AedbParams::from_vector(
      tuned.front[moo::knee_point(tuned.front)].x);
  std::printf("knee configuration: %s\n\n", knee.to_string().c_str());

  TextTable table;
  table.set_header({"condition", "coverage", "forwardings", "energy_dBm",
                    "bt [s]", "feasible"});
  for (const Condition& condition : kConditions) {
    double coverage = 0.0;
    double forwardings = 0.0;
    double energy = 0.0;
    double bt = 0.0;
    for (std::size_t net = 0; net < scale.networks; ++net) {
      aedb::ScenarioConfig scenario = spec.scenario_config(scale.seed, net);
      scenario.network.mobility = condition.mobility;
      scenario.network.static_nodes =
          condition.mobility == sim::MobilityKind::kStatic;
      scenario.network.shadowing_sigma_db = condition.shadowing_sigma;
      const auto stats = aedb::run_scenario(scenario, knee).stats;
      coverage += static_cast<double>(stats.coverage);
      forwardings += static_cast<double>(stats.forwardings);
      energy += stats.energy_dbm_sum;
      bt += stats.broadcast_time_s;
    }
    const double n = static_cast<double>(scale.networks);
    table.add_row({condition.name, format_double(coverage / n, 2),
                   format_double(forwardings / n, 2),
                   format_double(energy / n, 2), format_double(bt / n, 3),
                   bt / n < 2.0 ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: the knee configuration must stay feasible (bt < 2 s)\n"
              "across regimes.  Static/smoother mobility typically raises\n"
              "coverage (neighbor tables stay accurate).  Shadowing fades\n"
              "links both ways: fade-ups create long stochastic links that\n"
              "raise coverage, but at a real cost — energy and broadcast\n"
              "time climb because the beacon-based power estimates the\n"
              "protocol adapts with no longer match the channel (exactly the\n"
              "uncertainty the margin_threshold parameter exists to absorb).\n");
  return 0;
}
