/// E9 — ablation of the paper's first contribution: the sensitivity-guided
/// search criteria (§IV-B) and the asymmetric Eq.-2 BLX step.  Four MLS
/// variants at identical budgets on each density:
///   * AEDB-MLS           — paper configuration (3 guided criteria, Eq. 2);
///   * AEDB-MLS-unguided  — one all-variables criterion (no guidance);
///   * AEDB-MLS-pervar    — per-variable criteria (guidance w/o grouping);
///   * AEDB-MLS-sym       — guided criteria but zero-bias symmetric step.
/// Scored by normalised hypervolume and IGD against the union reference.

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/runners.hpp"
#include "experiment/scale.hpp"
#include "moo/core/front_io.hpp"
#include "moo/core/normalization.hpp"
#include "moo/indicators/hypervolume.hpp"
#include "moo/indicators/igd.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale(args);
  expt::print_header("bench_ablation_operators",
                     "ablation: sensitivity-guided criteria & Eq.-2 step",
                     scale);

  const std::vector<std::string> variants{"AEDB-MLS", "AEDB-MLS-unguided",
                                          "AEDB-MLS-pervar", "AEDB-MLS-sym"};

  for (const int density : scale.densities) {
    std::printf("--- %d devices/km^2 ---\n", density);
    std::vector<std::vector<expt::RunRecord>> per_variant;
    std::vector<std::vector<moo::Solution>> all_fronts;
    for (const auto& variant : variants) {
      std::printf("[run] %-18s %zu runs...\n", variant.c_str(), scale.runs);
      std::fflush(stdout);
      per_variant.push_back(
          expt::run_repeats(variant, density, scale, nullptr));
      for (const auto& record : per_variant.back()) {
        all_fronts.push_back(record.front);
      }
    }
    const auto reference = moo::merge_fronts(all_fronts);
    const moo::ObjectiveBounds bounds = moo::bounds_of(reference);
    const auto reference_norm = moo::normalize_front(reference, bounds);

    TextTable table;
    table.set_header({"variant", "hv mean", "hv sd", "igd mean", "igd sd"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
      RunningStats hv;
      RunningStats igd;
      for (const auto& record : per_variant[v]) {
        if (record.front.empty()) continue;
        const auto front = moo::normalize_front(record.front, bounds);
        hv.add(moo::hypervolume(front, moo::unit_reference(3)));
        igd.add(moo::paper_igd(front, reference_norm));
      }
      table.add_row({variants[v], format_double(hv.mean(), 4),
                     format_double(hv.stddev(), 4), format_double(igd.mean(), 4),
                     format_double(igd.stddev(), 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("expectation: guided criteria concentrate the budget on the\n"
              "variables that matter (border/neighbors/delays) and skip the\n"
              "inert margin, so the paper variant should match or beat the\n"
              "unguided one, most visibly at the denser instances.\n");
  return 0;
}
