/// E9 — ablation of the paper's first contribution: the sensitivity-guided
/// search criteria (§IV-B) and the asymmetric Eq.-2 BLX step.  Four MLS
/// variants at identical budgets on each scenario:
///   * AEDB-MLS           — paper configuration (3 guided criteria, Eq. 2);
///   * AEDB-MLS-unguided  — one all-variables criterion (no guidance);
///   * AEDB-MLS-pervar    — per-variable criteria (guidance w/o grouping);
///   * AEDB-MLS-sym       — guided criteria but zero-bias symmetric step.
/// Scored by normalised hypervolume and IGD against the union reference
/// (the ExperimentDriver's per-scenario protocol).

#include <algorithm>
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/bench_cli.hpp"
#include "expt/experiment.hpp"

int main(int argc, char** argv) {
  using namespace aedbmls;
  const CliArgs args(argc, argv);
  const expt::Scale scale = expt::resolve_scale_or_exit(args);
  expt::print_header("bench_ablation_operators",
                     "ablation: sensitivity-guided criteria & Eq.-2 step",
                     scale);

  const std::vector<std::string> variants{"AEDB-MLS", "AEDB-MLS-unguided",
                                          "AEDB-MLS-pervar", "AEDB-MLS-sym"};

  expt::ExperimentDriver::Options options;
  options.use_cache = !args.has("no-cache");
  // Every cell here is an MLS variant that spawns its own populations x
  // threads workers, so driver-level sharding multiplies thread counts;
  // cap with --workers=1 for paper-scale layouts (8x12 threads per cell).
  options.workers = static_cast<std::size_t>(std::max(0L, args.get_int("workers", 0)));
  // Honours --ranks / --shard=i/N / --merge=DIR for distributed campaigns.
  const auto samples =
      expt::run_campaign_or_exit(args, expt::ExperimentPlan::of(variants, scale),
                                 options)
          .samples;

  for (const std::string& scenario : scale.scenarios) {
    std::printf("--- %s ---\n", scenario.c_str());
    TextTable table;
    table.set_header({"variant", "hv mean", "hv sd", "igd mean", "igd sd"});
    for (const std::string& variant : variants) {
      RunningStats hv;
      RunningStats igd;
      for (const expt::IndicatorSample& s : samples) {
        if (s.algorithm != variant || s.scenario != scenario) continue;
        // An empty-front run carries placeholder zeros, not scores; it
        // must not pull igd toward perfect and hv toward worst.
        if (s.front_size == 0) continue;
        hv.add(s.hypervolume);
        igd.add(s.igd);
      }
      table.add_row({variant, format_double(hv.mean(), 4),
                     format_double(hv.stddev(), 4), format_double(igd.mean(), 4),
                     format_double(igd.stddev(), 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("expectation: guided criteria concentrate the budget on the\n"
              "variables that matter (border/neighbors/delays) and skip the\n"
              "inert margin, so the paper variant should match or beat the\n"
              "unguided one, most visibly at the denser instances.\n");
  return 0;
}
